// Tests for the evaluation subsystem: satisfaction oracle, study groups and
// the experiment harnesses.
#include <gtest/gtest.h>

#include <numeric>

#include "eval/experiments.h"
#include "eval/satisfaction.h"
#include "eval/study_groups.h"

namespace greca {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 300;
    uc.num_items = 400;
    uc.target_ratings = 25'000;
    uc.seed = 21;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));

    FacebookStudyConfig sc;
    sc.diversity_pool = 200;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));

    RecommenderOptions options;
    options.max_candidate_items = 300;
    recommender_ = new GroupRecommender(*universe_, *study_, options);

    oracle_ = new SatisfactionOracle(universe_->truth, study_->like_truth,
                                     study_->universe_user, OracleWeights{});
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete recommender_;
    delete study_;
    delete universe_;
    oracle_ = nullptr;
    recommender_ = nullptr;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
  static GroupRecommender* recommender_;
  static SatisfactionOracle* oracle_;
};

SyntheticRatings* EvalTest::universe_ = nullptr;
FacebookStudy* EvalTest::study_ = nullptr;
GroupRecommender* EvalTest::recommender_ = nullptr;
SatisfactionOracle* EvalTest::oracle_ = nullptr;

TEST_F(EvalTest, ItemSatisfactionInUnitInterval) {
  const Group group{0, 1, 2};
  for (ItemId i = 0; i < 50; ++i) {
    const double s = oracle_->ItemSatisfaction(0, group, i, 0);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(EvalTest, SingletonGroupUsesOwnPreferenceOnly) {
  const Group solo{3};
  const double s = oracle_->ItemSatisfaction(3, solo, 10, 0);
  const double tp =
      (universe_->truth.TruePreference(study_->universe_user[3], 10) - 1.0) /
      4.0;
  EXPECT_NEAR(s, tp, 1e-12);
}

TEST_F(EvalTest, GroupSatisfactionPercentScales) {
  const Group group{0, 1, 2, 3};
  const std::vector<ItemId> list{0, 1, 2, 3, 4};
  const double pct = oracle_->GroupSatisfactionPercent(group, list, 0);
  EXPECT_GE(pct, 0.0);
  EXPECT_LE(pct, 100.0);
}

TEST_F(EvalTest, PreferenceShareIsComplementary) {
  const Group group{0, 1, 2, 4, 5};
  const std::vector<ItemId> l1{0, 1, 2};
  const std::vector<ItemId> l2{10, 11, 12};
  const auto last = static_cast<PeriodId>(recommender_->num_periods() - 1);
  const double p12 = oracle_->PreferenceSharePercent(group, l1, l2, last);
  const double p21 = oracle_->PreferenceSharePercent(group, l2, l1, last);
  EXPECT_NEAR(p12 + p21, 100.0, 1e-9);
  // Identical lists tie exactly.
  EXPECT_NEAR(oracle_->PreferenceSharePercent(group, l1, l1, last), 50.0,
              1e-9);
}

TEST_F(EvalTest, VoteSharesSumToHundred) {
  const Group group{0, 1, 2, 3, 4, 5};
  const std::vector<std::vector<ItemId>> lists{
      {0, 1, 2}, {5, 6, 7}, {10, 11, 12}};
  const auto shares = oracle_->VoteShares(group, lists, 0);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 100.0,
              1e-9);
}

TEST_F(EvalTest, StudyGroupsCoverAllCombinations) {
  const auto groups = FormStudyGroups(*recommender_);
  ASSERT_EQ(groups.size(), 8u);
  std::size_t small = 0, similar = 0, high = 0;
  for (const StudyGroup& g : groups) {
    EXPECT_EQ(g.members.size(), g.spec.size);
    small += g.spec.size == 3;
    similar += g.spec.similar;
    high += g.spec.high_affinity;
  }
  EXPECT_EQ(small, 4u);
  EXPECT_EQ(similar, 4u);
  EXPECT_EQ(high, 4u);
}

TEST_F(EvalTest, StudyGroupsRespectFormationObjectives) {
  const auto groups = FormStudyGroups(*recommender_);
  // Aggregate over matched pairs of specs: similar >= dissimilar cohesion,
  // high-affinity >= low-affinity weakest link.
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (std::size_t j = 0; j < groups.size(); ++j) {
      const auto& a = groups[i];
      const auto& b = groups[j];
      if (a.spec.size == b.spec.size &&
          a.spec.high_affinity == b.spec.high_affinity && a.spec.similar &&
          !b.spec.similar) {
        EXPECT_GE(a.sum_similarity, b.sum_similarity)
            << "size " << a.spec.size;
      }
      if (a.spec.size == b.spec.size && a.spec.similar == b.spec.similar &&
          a.spec.high_affinity && !b.spec.high_affinity) {
        EXPECT_GE(a.min_affinity, b.min_affinity) << "size " << a.spec.size;
      }
    }
  }
}

TEST_F(EvalTest, CharacteristicBucketsPartitionPairs) {
  const StudyGroupSpec spec{3, true, false};
  EXPECT_TRUE(HasCharacteristic(spec, GroupCharacteristic::kSim));
  EXPECT_FALSE(HasCharacteristic(spec, GroupCharacteristic::kDiss));
  EXPECT_TRUE(HasCharacteristic(spec, GroupCharacteristic::kSmall));
  EXPECT_TRUE(HasCharacteristic(spec, GroupCharacteristic::kLowAff));
  EXPECT_EQ(AllCharacteristics().size(), kNumCharacteristics);
  EXPECT_EQ(CharacteristicName(GroupCharacteristic::kHighAff), "High Aff");
}

TEST_F(EvalTest, QualityHarnessProducesBuckets) {
  QualityHarness harness(*recommender_, *oracle_,
                         FormStudyGroups(*recommender_), /*k=*/5);
  const auto scores = harness.IndependentEval(RecommendationVariant::Default());
  ASSERT_EQ(scores.size(), kNumCharacteristics);
  for (const double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 100.0);
  }
}

TEST_F(EvalTest, ComparativeEvalAgainstSelfIsFifty) {
  QualityHarness harness(*recommender_, *oracle_,
                         FormStudyGroups(*recommender_), 5);
  const auto shares = harness.ComparativeEval(
      RecommendationVariant::Default(), RecommendationVariant::Default());
  for (const double s : shares) EXPECT_NEAR(s, 50.0, 1e-9);
}

TEST_F(EvalTest, PerformanceHarnessMeasuresSaveup) {
  PerformanceHarness perf(*recommender_, 77);
  QuerySpec spec = PerformanceHarness::DefaultSpec();
  spec.num_candidate_items = 300;
  spec.k = 5;
  const auto m = perf.MeasureRandomGroups(spec, 4, 5);
  EXPECT_GT(m.mean_sa_percent, 0.0);
  EXPECT_LE(m.mean_sa_percent, 100.0);
  EXPECT_NEAR(m.mean_sa_percent + m.mean_saveup_percent, 100.0, 1e-9);
  EXPECT_GT(m.mean_rounds, 0.0);
}

TEST_F(EvalTest, RandomGroupsDeterministicAndValid) {
  PerformanceHarness perf(*recommender_, 123);
  const auto a = perf.RandomGroups(5, 6);
  const auto b = perf.RandomGroups(5, 6);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);
  for (const Group& g : a) {
    EXPECT_EQ(g.size(), 6u);
    for (const UserId u : g) EXPECT_LT(u, study_->num_participants());
  }
}

}  // namespace
}  // namespace greca
