// Tests for the collaborative-filtering engine.
#include <gtest/gtest.h>

#include <cmath>

#include "cf/preference_list.h"
#include "cf/similarity.h"
#include "cf/user_knn.h"
#include "dataset/synthetic.h"

namespace greca {
namespace {

std::vector<UserRatingEntry> Profile(
    std::initializer_list<std::pair<ItemId, Score>> ratings) {
  std::vector<UserRatingEntry> out;
  for (const auto& [item, rating] : ratings) out.push_back({item, rating, 0});
  return out;
}

TEST(SimilarityTest, CosineIdenticalVectorsIsOne) {
  const auto a = Profile({{0, 5.0}, {1, 3.0}});
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(SimilarityTest, CosineDisjointIsZero) {
  const auto a = Profile({{0, 5.0}});
  const auto b = Profile({{1, 5.0}});
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, {}), 0.0);
}

TEST(SimilarityTest, CosineHandExample) {
  // Overlap on item 0 only: dot = 4*2 = 8; norms = 5, sqrt(8).
  const auto a = Profile({{0, 4.0}, {1, 3.0}});
  const auto b = Profile({{0, 2.0}, {2, 2.0}});
  EXPECT_NEAR(CosineSimilarity(a, b), 8.0 / (5.0 * std::sqrt(8.0)), 1e-12);
}

TEST(SimilarityTest, OverlapCosineIgnoresNonShared) {
  const auto a = Profile({{0, 4.0}, {1, 1.0}});
  const auto b = Profile({{0, 2.0}, {2, 5.0}});
  // Only item 0 is shared: overlap cosine of single positive pair = 1.
  EXPECT_NEAR(OverlapCosineSimilarity(a, b), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(OverlapCosineSimilarity(a, Profile({{2, 3.0}})), 0.0);
}

TEST(SimilarityTest, PearsonDetectsOppositeTastes) {
  const auto a = Profile({{0, 1.0}, {1, 3.0}, {2, 5.0}});
  const auto b = Profile({{0, 5.0}, {1, 3.0}, {2, 1.0}});
  EXPECT_NEAR(PearsonSimilarity(a, b), -1.0, 1e-12);
  EXPECT_NEAR(PearsonSimilarity(a, a), 1.0, 1e-12);
}

class UserKnnTest : public ::testing::Test {
 protected:
  UserKnnTest() {
    SyntheticRatingsConfig config;
    config.num_users = 150;
    config.num_items = 120;
    config.target_ratings = 6'000;
    config.min_ratings_per_user = 15;
    config.seed = 5;
    synthetic_ = GenerateSyntheticRatings(config);
  }
  SyntheticRatings synthetic_;
};

TEST_F(UserKnnTest, NeighborsSortedAndBounded) {
  UserKnnConfig config;
  config.num_neighbors = 10;
  const UserKnn knn(synthetic_.dataset, config);
  const auto profile = synthetic_.dataset.RatingsOfUser(0);
  const auto neighbors = knn.Neighbors(profile);
  ASSERT_LE(neighbors.size(), 10u);
  ASSERT_GE(neighbors.size(), 2u);
  for (std::size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i - 1].score, neighbors[i].score);
  }
  // A user's own row is their most similar neighbor (cosine 1).
  EXPECT_EQ(neighbors[0].id, 0u);
  EXPECT_NEAR(neighbors[0].score, 1.0, 1e-9);
}

TEST_F(UserKnnTest, PredictionsOnRatingScale) {
  const UserKnn knn(synthetic_.dataset, {});
  const auto preds = knn.PredictAll(synthetic_.dataset.RatingsOfUser(3));
  ASSERT_EQ(preds.size(), synthetic_.dataset.num_items());
  for (const double p : preds) {
    EXPECT_GE(p, 1.0);
    EXPECT_LE(p, 5.0);
  }
}

TEST_F(UserKnnTest, EmptyProfileFallsBackToItemMeans) {
  const UserKnn knn(synthetic_.dataset, {});
  const auto preds = knn.PredictAll({});
  // With no neighbors, predictions equal the shrunk item means; popular
  // items should be near their observed mean.
  const ItemId top = synthetic_.dataset.TopPopularItems(1)[0];
  EXPECT_NEAR(preds[top], synthetic_.dataset.ItemMeanRating(top, 3.5), 0.2);
}

TEST_F(UserKnnTest, PredictWithNeighborsMatchesKnownRatingsRoughly) {
  const UserKnn knn(synthetic_.dataset, {});
  double err = 0.0;
  std::size_t count = 0;
  for (UserId u = 0; u < 30; ++u) {
    const auto profile = synthetic_.dataset.RatingsOfUser(u);
    const auto preds = knn.PredictAll(profile);
    for (const auto& e : profile) {
      err += std::abs(preds[e.item] - e.rating);
      ++count;
    }
  }
  // Reconstruction MAE well under random guessing (~1.5 stars).
  EXPECT_LT(err / static_cast<double>(count), 1.0);
}

TEST(PreferenceListTest, EntriesSortedAndNormalized) {
  const std::vector<Score> predictions{4.0, 2.0, 5.0, 3.0};
  const std::vector<ItemId> candidates{0, 1, 2};
  const auto entries = BuildPreferenceEntries(predictions, 5.0, candidates);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].id, 2u);  // prediction 5.0 -> 1.0
  EXPECT_DOUBLE_EQ(entries[0].score, 1.0);
  EXPECT_EQ(entries[1].id, 0u);  // 4.0 -> 0.8
  EXPECT_DOUBLE_EQ(entries[1].score, 0.8);
  EXPECT_EQ(entries[2].id, 1u);
  EXPECT_DOUBLE_EQ(entries[2].score, 0.4);
}

TEST(PreferenceListTest, KeysAreCandidatePositionsNotItemIds) {
  const std::vector<Score> predictions{1.0, 5.0};
  const std::vector<ItemId> candidates{1};  // only item 1
  const auto entries = BuildPreferenceEntries(predictions, 5.0, candidates);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].id, 0u);  // key 0 = candidates[0] = item 1
  EXPECT_DOUBLE_EQ(entries[0].score, 1.0);
}

}  // namespace
}  // namespace greca
