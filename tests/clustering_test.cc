// Tests for k-means user clustering.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dataset/synthetic.h"
#include "groups/user_clustering.h"

namespace greca {
namespace {

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two tight blobs in 2D.
  std::vector<double> data;
  for (int i = 0; i < 10; ++i) {
    data.push_back(0.0 + 0.01 * i);
    data.push_back(0.0);
  }
  for (int i = 0; i < 10; ++i) {
    data.push_back(10.0 + 0.01 * i);
    data.push_back(10.0);
  }
  KMeansConfig config;
  config.num_clusters = 2;
  const KMeansResult result = KMeans(data, 20, 2, config);
  ASSERT_EQ(result.assignment.size(), 20u);
  // All of the first blob together, all of the second together, different.
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)],
              result.assignment[0]);
    EXPECT_EQ(result.assignment[static_cast<std::size_t>(10 + i)],
              result.assignment[10]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[10]);
  EXPECT_LT(result.inertia, 1.0);
  EXPECT_GE(result.iterations, 1u);
}

TEST(KMeansTest, DeterministicInSeed) {
  std::vector<double> data;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) data.push_back(rng.NextGaussian());
  KMeansConfig config;
  config.num_clusters = 3;
  const KMeansResult a = KMeans(data, 20, 3, config);
  const KMeansResult b = KMeans(data, 20, 3, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, SingleClusterIsCentroidOfAll) {
  const std::vector<double> data{1.0, 3.0, 5.0, 7.0};
  KMeansConfig config;
  config.num_clusters = 1;
  const KMeansResult result = KMeans(data, 4, 1, config);
  EXPECT_NEAR(result.centroids[0], 4.0, 1e-9);
  for (const std::size_t a : result.assignment) EXPECT_EQ(a, 0u);
}

TEST(KMeansTest, HandlesIdenticalPoints) {
  const std::vector<double> data(30, 2.5);  // 15 identical 2-d points
  KMeansConfig config;
  config.num_clusters = 3;
  const KMeansResult result = KMeans(data, 15, 2, config);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(RatingFeatureMatrixTest, MeanCentersAndZeroFillsMissing) {
  std::vector<RatingRecord> records{
      {0, 0, 5.0, 1}, {0, 1, 3.0, 2},  // user 0 mean = 4
      {1, 0, 2.0, 3},                  // user 1 mean = 2
  };
  const auto ds = RatingsDataset::FromRecords(2, 3, std::move(records));
  const std::vector<UserId> users{0, 1};
  const std::vector<ItemId> features{0, 1, 2};
  const auto matrix = RatingFeatureMatrix(ds, users, features);
  ASSERT_EQ(matrix.size(), 6u);
  EXPECT_DOUBLE_EQ(matrix[0], 1.0);   // 5 - 4
  EXPECT_DOUBLE_EQ(matrix[1], -1.0);  // 3 - 4
  EXPECT_DOUBLE_EQ(matrix[2], 0.0);   // unrated
  EXPECT_DOUBLE_EQ(matrix[3], 0.0);   // 2 - 2
  EXPECT_DOUBLE_EQ(matrix[4], 0.0);
  EXPECT_DOUBLE_EQ(matrix[5], 0.0);
}

TEST(ClusterUsersByRatingsTest, PartitionsAllUsers) {
  SyntheticRatingsConfig config;
  config.num_users = 120;
  config.num_items = 80;
  config.target_ratings = 4'000;
  config.seed = 29;
  const SyntheticRatings synthetic = GenerateSyntheticRatings(config);

  std::vector<UserId> users(60);
  for (UserId u = 0; u < 60; ++u) users[u] = u;
  KMeansConfig km;
  km.num_clusters = 4;
  const auto clusters =
      ClusterUsersByRatings(synthetic.dataset, users, 40, km);
  ASSERT_EQ(clusters.size(), 4u);
  std::set<UserId> seen;
  for (const auto& cluster : clusters) {
    for (const UserId u : cluster) {
      EXPECT_TRUE(seen.insert(u).second) << "user in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), 60u);
}

}  // namespace
}  // namespace greca
