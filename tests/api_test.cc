// Tests for the batch-first public API: Engine::RecommendBatch equivalence
// with sequential execution, QueryBuilder validation, determinism across
// thread counts, workspace reuse, the thread pool itself, and pluggable
// affinity sources.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/query_builder.h"
#include "common/thread_pool.h"

namespace greca {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 350;
    uc.num_items = 450;
    uc.target_ratings = 30'000;
    uc.seed = 33;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 200;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
    RecommenderOptions options;
    options.max_candidate_items = 400;
    EngineOptions eopts;
    eopts.num_threads = 4;
    engine_ = new Engine(*universe_, *study_, options, eopts);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete study_;
    delete universe_;
    engine_ = nullptr;
    study_ = nullptr;
    universe_ = nullptr;
  }

  /// A mixed 64-query batch: group sizes 2..7, all algorithms, several
  /// models/consensus functions and k values, all periods.
  static std::vector<Query> MixedBatch() {
    const auto participants =
        static_cast<UserId>(study_->num_participants());
    const auto num_periods =
        static_cast<PeriodId>(engine_->recommender().num_periods());
    const AffinityModelSpec models[] = {
        AffinityModelSpec::Default(), AffinityModelSpec::Continuous(),
        AffinityModelSpec::TimeAgnostic(),
        AffinityModelSpec::AffinityAgnostic()};
    const ConsensusSpec consensus[] = {
        ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery(),
        ConsensusSpec::PairwiseDisagreement(0.8)};
    const Algorithm algorithms[] = {Algorithm::kGreca, Algorithm::kNaive,
                                    Algorithm::kTa};
    std::vector<Query> batch;
    for (std::size_t i = 0; i < 64; ++i) {
      Query q;
      const std::size_t size = 2 + i % 6;
      for (std::size_t j = 0; j < size; ++j) {
        q.group.push_back(
            static_cast<UserId>((i * 13 + j * 7) % participants));
      }
      std::sort(q.group.begin(), q.group.end());
      q.group.erase(std::unique(q.group.begin(), q.group.end()),
                    q.group.end());
      q.spec.k = 3 + i % 8;
      q.spec.model = models[i % 4];
      q.spec.consensus = consensus[i % 3];
      q.spec.algorithm = algorithms[i % 3];
      q.spec.num_candidate_items = 400;
      q.spec.eval_period = static_cast<PeriodId>(i % num_periods);
      batch.push_back(std::move(q));
    }
    return batch;
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
  static Engine* engine_;
};

SyntheticRatings* ApiTest::universe_ = nullptr;
FacebookStudy* ApiTest::study_ = nullptr;
Engine* ApiTest::engine_ = nullptr;

TEST_F(ApiTest, BatchMatchesSequentialOn64Queries) {
  const std::vector<Query> batch = MixedBatch();
  ASSERT_EQ(batch.size(), 64u);
  const auto parallel = engine_->RecommendBatch(batch);
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto sequential = engine_->Recommend(batch[i]);
    ASSERT_TRUE(sequential.ok()) << "query " << i;
    ASSERT_TRUE(parallel[i].ok()) << "query " << i;
    EXPECT_EQ(parallel[i].value().items, sequential.value().items)
        << "query " << i;
    EXPECT_EQ(parallel[i].value().scores, sequential.value().scores)
        << "query " << i;
  }
}

TEST_F(ApiTest, BatchIsDeterministicAcrossThreadCounts) {
  const std::vector<Query> batch = MixedBatch();
  EngineOptions two;
  two.num_threads = 2;
  EngineOptions five;
  five.num_threads = 5;
  const Engine engine2(engine_->recommender(), two);
  const Engine engine5(engine_->recommender(), five);
  EXPECT_EQ(engine2.num_threads(), 2u);
  EXPECT_EQ(engine5.num_threads(), 5u);
  const auto r2 = engine2.RecommendBatch(batch);
  const auto r5 = engine5.RecommendBatch(batch);
  const auto r5b = engine5.RecommendBatch(batch);
  ASSERT_EQ(r2.size(), r5.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(r2[i].value().items, r5[i].value().items) << "query " << i;
    EXPECT_EQ(r5[i].value().items, r5b[i].value().items) << "query " << i;
    EXPECT_EQ(r2[i].value().scores, r5[i].value().scores) << "query " << i;
  }
}

TEST_F(ApiTest, DefaultEngineUsesAtLeastTwoThreads) {
  const Engine engine(engine_->recommender());
  EXPECT_GE(engine.num_threads(), 2u);
}

TEST_F(ApiTest, ValidationErrorsSurfaceAsStatus) {
  // Empty group.
  auto r = QueryBuilder(*engine_).TopK(5).Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // k = 0.
  r = QueryBuilder(*engine_).Members({1, 2, 3}).TopK(0).Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Unknown user.
  r = QueryBuilder(*engine_).Members({1, 10'000}).Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);

  // Duplicate members: the builder dedupes to first occurrences (see
  // query_builder.h) — a raw Query with duplicates is still rejected, which
  // DuplicateMembersAreDeduplicatedByBuilder covers in full.
  r = QueryBuilder(*engine_).Members({4, 4, 7}).Build();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().group, (std::vector<UserId>{4, 7}));

  // Out-of-range period.
  r = QueryBuilder(*engine_).Members({1, 2}).AtPeriod(10'000).Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);

  // Empty candidate pool.
  r = QueryBuilder(*engine_).Members({1, 2}).CandidatePool(0).Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Oversized groups are a GRECA-only limit (32-bit seen bitmask); the
  // naive scan accepts them.
  std::vector<UserId> big_group;
  for (UserId u = 0; u < 33; ++u) big_group.push_back(u);
  r = QueryBuilder(*engine_).Members(big_group).TopK(3).Build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  r = QueryBuilder(*engine_)
          .Members(big_group)
          .TopK(3)
          .Using(Algorithm::kNaive)
          .Build();
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // A valid build passes and runs.
  r = QueryBuilder(*engine_).Members({4, 17, 29}).TopK(5).Build();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto rec = engine_->Recommend(r.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().items.size(), 5u);
}

TEST_F(ApiTest, DuplicateMembersAreDeduplicatedByBuilder) {
  // A duplicated member would double-weight that member's preferences in
  // every consensus function; the builder collapses repeats to the first
  // occurrence (order preserved) so the query runs as the distinct group.
  const auto deduped = QueryBuilder(*engine_)
                           .Members({17, 4, 17, 29, 4})
                           .TopK(5)
                           .Build();
  ASSERT_TRUE(deduped.ok()) << deduped.status().ToString();
  EXPECT_EQ(deduped.value().group, (std::vector<UserId>{17, 4, 29}));

  // AddMember repeats collapse the same way.
  const auto added = QueryBuilder(*engine_)
                         .AddMember(4)
                         .AddMember(17)
                         .AddMember(4)
                         .TopK(5)
                         .Build();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(added.value().group, (std::vector<UserId>{4, 17}));

  // The deduped query is equivalent to the distinct group spelled out.
  const auto distinct =
      QueryBuilder(*engine_).Members({17, 4, 29}).TopK(5).Build();
  ASSERT_TRUE(distinct.ok());
  const auto a = engine_->Recommend(deduped.value());
  const auto b = engine_->Recommend(distinct.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().items, b.value().items);
  EXPECT_EQ(a.value().scores, b.value().scores);

  // Bypassing the builder with a raw duplicate group is still rejected:
  // silent double-weighting never executes.
  Query raw;
  raw.group = {4, 4, 7};
  raw.spec.k = 5;
  const auto rejected = engine_->Recommend(raw);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ApiTest, BadQueryInBatchDoesNotPoisonOthers) {
  std::vector<Query> batch = MixedBatch();
  batch.resize(8);
  batch[3].group.clear();                  // invalid: empty group
  batch[5].spec.eval_period = 10'000;      // invalid: out-of-range period
  const auto results = engine_->RecommendBatch(batch);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 3) {
      ASSERT_FALSE(results[i].ok());
      EXPECT_EQ(results[i].status().code(), StatusCode::kInvalidArgument);
    } else if (i == 5) {
      ASSERT_FALSE(results[i].ok());
      EXPECT_EQ(results[i].status().code(), StatusCode::kOutOfRange);
    } else {
      EXPECT_TRUE(results[i].ok()) << "query " << i;
    }
  }
}

TEST_F(ApiTest, WorkspaceReuseMatchesFreshExecution) {
  const std::vector<Query> batch = MixedBatch();
  QueryWorkspace workspace;
  for (std::size_t i = 0; i < 16; ++i) {
    const auto reused = engine_->recommender().Recommend(
        batch[i].group, batch[i].spec, &workspace);
    const auto fresh =
        engine_->recommender().Recommend(batch[i].group, batch[i].spec);
    ASSERT_TRUE(reused.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(reused.value().items, fresh.value().items) << "query " << i;
    EXPECT_EQ(reused.value().scores, fresh.value().scores) << "query " << i;
  }
}

TEST_F(ApiTest, PluggableAffinitySourceSwapsCleanly) {
  RecommenderOptions options;
  options.max_candidate_items = 400;
  EngineOptions eopts;
  eopts.num_threads = 2;
  Engine engine(*universe_, *study_, options, eopts);

  Query query;
  query.group = {4, 17, 29};
  query.spec.k = 5;
  query.spec.num_candidate_items = 400;
  const auto baseline = engine.Recommend(query);
  ASSERT_TRUE(baseline.ok());

  // Null sources and swapping on a wrapping (non-owning) engine are
  // rejected, not UB.
  EXPECT_EQ(engine.set_affinity_source(nullptr).code(),
            StatusCode::kInvalidArgument);
  Engine wrapping(engine.recommender());
  auto base = std::make_shared<StudyAffinitySource>(
      engine.recommender().static_affinity(),
      engine.recommender().periodic_affinity());
  EXPECT_EQ(wrapping.set_affinity_source(base).code(),
            StatusCode::kFailedPrecondition);

  // A decay-1 decorator over the study tables is the identity.
  ASSERT_TRUE(engine
                  .set_affinity_source(
                      std::make_shared<DecayWeightedAffinitySource>(base, 1.0))
                  .ok());
  const auto identity = engine.Recommend(query);
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity.value().items, baseline.value().items);
  EXPECT_EQ(identity.value().scores, baseline.value().scores);

  // A strongly decayed source still yields a full, valid top-k.
  ASSERT_TRUE(engine
                  .set_affinity_source(
                      std::make_shared<DecayWeightedAffinitySource>(base, 0.2))
                  .ok());
  const auto decayed = engine.Recommend(query);
  ASSERT_TRUE(decayed.ok());
  EXPECT_EQ(decayed.value().items.size(), 5u);
  for (const double score : decayed.value().scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(ThreadPoolTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::atomic<int>> hits(1'000);
  pool.ParallelFor(hits.size(), [&](std::size_t worker, std::size_t i) {
    EXPECT_LT(worker, 3u);
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunsOnMultipleWorkerThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(200, [&](std::size_t, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 2u);
  EXPECT_FALSE(ids.contains(std::this_thread::get_id()));
}

TEST(ThreadPoolTest, BackToBackBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, [&](std::size_t, std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 500u);
}

}  // namespace
}  // namespace greca
