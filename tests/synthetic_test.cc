// Tests for the synthetic MovieLens twin: determinism, calibration targets,
// and ground-truth consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "dataset/synthetic.h"

namespace greca {
namespace {

SyntheticRatingsConfig SmallConfig() {
  SyntheticRatingsConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.target_ratings = 12'000;
  config.min_ratings_per_user = 10;
  config.seed = 77;
  return config;
}

TEST(SyntheticRatingsTest, DeterministicInSeed) {
  const SyntheticRatings a = GenerateSyntheticRatings(SmallConfig());
  const SyntheticRatings b = GenerateSyntheticRatings(SmallConfig());
  ASSERT_EQ(a.dataset.num_ratings(), b.dataset.num_ratings());
  for (UserId u = 0; u < a.dataset.num_users(); ++u) {
    const auto ra = a.dataset.RatingsOfUser(u);
    const auto rb = b.dataset.RatingsOfUser(u);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].item, rb[i].item);
      EXPECT_EQ(ra[i].rating, rb[i].rating);
    }
  }
}

TEST(SyntheticRatingsTest, DifferentSeedsDiffer) {
  SyntheticRatingsConfig config = SmallConfig();
  const SyntheticRatings a = GenerateSyntheticRatings(config);
  config.seed = 78;
  const SyntheticRatings b = GenerateSyntheticRatings(config);
  EXPECT_NE(a.dataset.num_ratings(), b.dataset.num_ratings());
}

TEST(SyntheticRatingsTest, HitsTargetVolumeApproximately) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  const double achieved = static_cast<double>(s.dataset.num_ratings());
  EXPECT_GT(achieved, 0.7 * 12'000);
  EXPECT_LT(achieved, 1.4 * 12'000);
}

TEST(SyntheticRatingsTest, EveryUserMeetsMinimumActivity) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  for (UserId u = 0; u < s.dataset.num_users(); ++u) {
    EXPECT_GE(s.dataset.RatingsOfUser(u).size(), 10u) << "user " << u;
  }
}

TEST(SyntheticRatingsTest, RatingsOnStarScale) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  const DatasetStats stats = s.dataset.Stats();
  EXPECT_GE(stats.min_rating, 1.0);
  EXPECT_LE(stats.max_rating, 5.0);
  EXPECT_GT(stats.mean_rating, 2.5);
  EXPECT_LT(stats.mean_rating, 4.2);
  // Stars are integral.
  for (const auto& e : s.dataset.RatingsOfUser(0)) {
    EXPECT_DOUBLE_EQ(e.rating, std::round(e.rating));
  }
}

TEST(SyntheticRatingsTest, PopularityIsSkewed) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  const auto top = s.dataset.TopPopularItems(s.dataset.num_items());
  const double head = static_cast<double>(s.dataset.RatingsOfItem(top[0]).size());
  const double tail =
      static_cast<double>(s.dataset.RatingsOfItem(top[top.size() - 1]).size());
  EXPECT_GT(head, 5.0 * std::max(tail, 1.0));
}

TEST(SyntheticRatingsTest, TruePreferenceWithinScaleAndCorrelatesWithStars) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  double agree = 0.0, count = 0.0;
  for (UserId u = 0; u < 50; ++u) {
    for (const auto& e : s.dataset.RatingsOfUser(u)) {
      const double tp = s.truth.TruePreference(u, e.item);
      EXPECT_GE(tp, 1.0);
      EXPECT_LE(tp, 5.0);
      agree += std::abs(tp - e.rating) <= 1.0 ? 1.0 : 0.0;
      count += 1.0;
    }
  }
  // Observed stars are the true preference plus bounded noise and rounding;
  // the vast majority must land within one star.
  EXPECT_GT(agree / count, 0.8);
}

TEST(SyntheticRatingsTest, TimestampsWithinSpan) {
  SyntheticRatingsConfig config = SmallConfig();
  config.epoch = 1'000;
  config.span_seconds = 500'000;
  const SyntheticRatings s = GenerateSyntheticRatings(config);
  for (UserId u = 0; u < s.dataset.num_users(); ++u) {
    for (const auto& e : s.dataset.RatingsOfUser(u)) {
      EXPECT_GE(e.timestamp, 1'000);
      EXPECT_LT(e.timestamp, 1'000 + 500'000);
    }
  }
}

}  // namespace
}  // namespace greca
