// Tests for the synthetic MovieLens twin (determinism, calibration targets,
// ground-truth consistency) and the scale-up generator behind the sharded
// engine (power-law shape, locality knob).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dataset/synthetic.h"
#include "shard/shard_router.h"

namespace greca {
namespace {

SyntheticRatingsConfig SmallConfig() {
  SyntheticRatingsConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.target_ratings = 12'000;
  config.min_ratings_per_user = 10;
  config.seed = 77;
  return config;
}

TEST(SyntheticRatingsTest, DeterministicInSeed) {
  const SyntheticRatings a = GenerateSyntheticRatings(SmallConfig());
  const SyntheticRatings b = GenerateSyntheticRatings(SmallConfig());
  ASSERT_EQ(a.dataset.num_ratings(), b.dataset.num_ratings());
  for (UserId u = 0; u < a.dataset.num_users(); ++u) {
    const auto ra = a.dataset.RatingsOfUser(u);
    const auto rb = b.dataset.RatingsOfUser(u);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].item, rb[i].item);
      EXPECT_EQ(ra[i].rating, rb[i].rating);
    }
  }
}

TEST(SyntheticRatingsTest, DifferentSeedsDiffer) {
  SyntheticRatingsConfig config = SmallConfig();
  const SyntheticRatings a = GenerateSyntheticRatings(config);
  config.seed = 78;
  const SyntheticRatings b = GenerateSyntheticRatings(config);
  EXPECT_NE(a.dataset.num_ratings(), b.dataset.num_ratings());
}

TEST(SyntheticRatingsTest, HitsTargetVolumeApproximately) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  const double achieved = static_cast<double>(s.dataset.num_ratings());
  EXPECT_GT(achieved, 0.7 * 12'000);
  EXPECT_LT(achieved, 1.4 * 12'000);
}

TEST(SyntheticRatingsTest, EveryUserMeetsMinimumActivity) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  for (UserId u = 0; u < s.dataset.num_users(); ++u) {
    EXPECT_GE(s.dataset.RatingsOfUser(u).size(), 10u) << "user " << u;
  }
}

TEST(SyntheticRatingsTest, RatingsOnStarScale) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  const DatasetStats stats = s.dataset.Stats();
  EXPECT_GE(stats.min_rating, 1.0);
  EXPECT_LE(stats.max_rating, 5.0);
  EXPECT_GT(stats.mean_rating, 2.5);
  EXPECT_LT(stats.mean_rating, 4.2);
  // Stars are integral.
  for (const auto& e : s.dataset.RatingsOfUser(0)) {
    EXPECT_DOUBLE_EQ(e.rating, std::round(e.rating));
  }
}

TEST(SyntheticRatingsTest, PopularityIsSkewed) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  const auto top = s.dataset.TopPopularItems(s.dataset.num_items());
  const double head = static_cast<double>(s.dataset.RatingsOfItem(top[0]).size());
  const double tail =
      static_cast<double>(s.dataset.RatingsOfItem(top[top.size() - 1]).size());
  EXPECT_GT(head, 5.0 * std::max(tail, 1.0));
}

TEST(SyntheticRatingsTest, TruePreferenceWithinScaleAndCorrelatesWithStars) {
  const SyntheticRatings s = GenerateSyntheticRatings(SmallConfig());
  double agree = 0.0, count = 0.0;
  for (UserId u = 0; u < 50; ++u) {
    for (const auto& e : s.dataset.RatingsOfUser(u)) {
      const double tp = s.truth.TruePreference(u, e.item);
      EXPECT_GE(tp, 1.0);
      EXPECT_LE(tp, 5.0);
      agree += std::abs(tp - e.rating) <= 1.0 ? 1.0 : 0.0;
      count += 1.0;
    }
  }
  // Observed stars are the true preference plus bounded noise and rounding;
  // the vast majority must land within one star.
  EXPECT_GT(agree / count, 0.8);
}

TEST(SyntheticRatingsTest, TimestampsWithinSpan) {
  SyntheticRatingsConfig config = SmallConfig();
  config.epoch = 1'000;
  config.span_seconds = 500'000;
  const SyntheticRatings s = GenerateSyntheticRatings(config);
  for (UserId u = 0; u < s.dataset.num_users(); ++u) {
    for (const auto& e : s.dataset.RatingsOfUser(u)) {
      EXPECT_GE(e.timestamp, 1'000);
      EXPECT_LT(e.timestamp, 1'000 + 500'000);
    }
  }
}

// --- Scale-up generator (src/shard's million-user harness) ------------------

ScaleRatingsConfig SmallScaleConfig() {
  ScaleRatingsConfig config;
  config.num_users = 20'000;
  config.num_items = 4'000;
  config.min_ratings_per_user = 4;
  config.max_ratings_per_user = 256;
  config.seed = 19;
  return config;
}

TEST(ScaleRatingsTest, DeterministicInSeed) {
  const SyntheticRatings a = GenerateScaleRatings(SmallScaleConfig());
  const SyntheticRatings b = GenerateScaleRatings(SmallScaleConfig());
  ASSERT_EQ(a.dataset.num_ratings(), b.dataset.num_ratings());
  for (UserId u = 0; u < a.dataset.num_users(); ++u) {
    const auto ra = a.dataset.RatingsOfUser(u);
    const auto rb = b.dataset.RatingsOfUser(u);
    ASSERT_EQ(ra.size(), rb.size()) << "user " << u;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].item, rb[i].item);
      EXPECT_EQ(ra[i].rating, rb[i].rating);
      EXPECT_EQ(ra[i].timestamp, rb[i].timestamp);
    }
  }
  ScaleRatingsConfig other = SmallScaleConfig();
  other.seed = 20;
  EXPECT_NE(GenerateScaleRatings(other).dataset.num_ratings(),
            a.dataset.num_ratings());
}

TEST(ScaleRatingsTest, ActivityBoundsAndStarScale) {
  const SyntheticRatings s = GenerateScaleRatings(SmallScaleConfig());
  std::size_t at_max = 0;
  for (UserId u = 0; u < s.dataset.num_users(); ++u) {
    const auto row = s.dataset.RatingsOfUser(u);
    // The rejection loop can fall a little short of `want` for tail users,
    // but the Pareto floor keeps everyone active.
    EXPECT_GE(row.size(), 1u) << "user " << u;
    EXPECT_LE(row.size(), 256u) << "user " << u;
    at_max += row.size() >= 200 ? 1 : 0;
    for (const auto& e : row) {
      EXPECT_GE(e.rating, 1.0);
      EXPECT_LE(e.rating, 5.0);
      EXPECT_DOUBLE_EQ(e.rating, std::round(e.rating));
    }
  }
  // The heavy tail exists but is rare: some power raters, far below 1%.
  EXPECT_GT(at_max, 0u);
  EXPECT_LT(at_max, s.dataset.num_users() / 100);
  // The truncated-Pareto mean stays near the floor — the property that
  // keeps million-user datasets generable.
  const double mean = static_cast<double>(s.dataset.num_ratings()) /
                      static_cast<double>(s.dataset.num_users());
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 30.0);
}

// Per-user rating counts follow the configured power law: the log-log
// complementary CDF of counts is near-linear with slope ≈ −(α − 1) over the
// untruncated middle of the distribution.
TEST(ScaleRatingsTest, ActivityTailIndexMatchesConfiguredAlpha) {
  const ScaleRatingsConfig config = SmallScaleConfig();
  const SyntheticRatings s = GenerateScaleRatings(config);
  std::vector<double> counts;
  counts.reserve(s.dataset.num_users());
  for (UserId u = 0; u < s.dataset.num_users(); ++u) {
    counts.push_back(static_cast<double>(s.dataset.RatingsOfUser(u).size()));
  }
  std::sort(counts.begin(), counts.end());
  // Least-squares fit of log P(count > x) against log x at sample points
  // inside (min, max/2) — away from both truncation edges.
  const double n = static_cast<double>(counts.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, pts = 0;
  for (double x = 6; x <= 100; x *= 1.5) {
    const auto above = counts.end() -
                       std::upper_bound(counts.begin(), counts.end(), x);
    if (above == 0) break;
    const double lx = std::log(x);
    const double ly = std::log(static_cast<double>(above) / n);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    pts += 1;
  }
  ASSERT_GE(pts, 4);
  const double slope = (pts * sxy - sx * sy) / (pts * sxx - sx * sx);
  const double tail_index = config.pareto_alpha - 1.0;  // 1.2
  EXPECT_NEAR(-slope, tail_index, 0.25)
      << "fitted tail slope " << slope << " for alpha " << config.pareto_alpha;
}

TEST(ScaleRatingsTest, ItemPopularityIsZipfSkewed) {
  const SyntheticRatings s = GenerateScaleRatings(SmallScaleConfig());
  const auto top = s.dataset.TopPopularItems(s.dataset.num_items());
  // Head mass: the top 1% of items draw a disproportionate rating share.
  const std::size_t head_items = s.dataset.num_items() / 100;
  std::size_t head_mass = 0;
  for (std::size_t i = 0; i < head_items; ++i) {
    head_mass += s.dataset.RatingsOfItem(top[i]).size();
  }
  EXPECT_GT(static_cast<double>(head_mass),
            0.2 * static_cast<double>(s.dataset.num_ratings()));
}

TEST(ScaleGroupsTest, DeterministicDistinctAndSized) {
  const ShardRouter router(8, 10'000, ShardStrategy::kHash);
  const auto shard_of = [&](UserId u) { return router.ShardOf(u); };
  ScaleGroupsConfig config;
  config.num_groups = 200;
  config.group_size = 5;
  config.locality = 0.5;
  const auto a = GenerateScaleGroups(config, 10'000, 8, shard_of);
  const auto b = GenerateScaleGroups(config, 10'000, 8, shard_of);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b);
  for (const auto& group : a) {
    ASSERT_EQ(group.size(), 5u);
    std::vector<UserId> sorted(group);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate member";
    for (const UserId u : group) EXPECT_LT(u, 10'000u);
  }
}

// The locality knob is monotone: raising it can only concentrate groups
// onto fewer shards. At 1.0 every group is single-shard; at 0.0 a 5-member
// group on 8 hash shards scatters wide.
TEST(ScaleGroupsTest, LocalityKnobMonotonicallyConcentratesGroups) {
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kUsers = 10'000;
  const ShardRouter router(kShards, kUsers, ShardStrategy::kHash);
  const auto shard_of = [&](UserId u) { return router.ShardOf(u); };

  const auto avg_shards_touched = [&](double locality) {
    ScaleGroupsConfig config;
    config.num_groups = 400;
    config.group_size = 5;
    config.locality = locality;
    const auto groups =
        GenerateScaleGroups(config, kUsers, kShards, shard_of);
    double total = 0;
    std::vector<std::size_t> seen;
    for (const auto& group : groups) {
      seen.clear();
      for (const UserId u : group) seen.push_back(shard_of(u));
      std::sort(seen.begin(), seen.end());
      seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
      total += static_cast<double>(seen.size());
    }
    return total / static_cast<double>(groups.size());
  };

  const double at_zero = avg_shards_touched(0.0);
  const double at_half = avg_shards_touched(0.5);
  const double at_one = avg_shards_touched(1.0);
  EXPECT_DOUBLE_EQ(at_one, 1.0) << "locality 1.0 means single-shard groups";
  EXPECT_LT(at_half, at_zero);
  EXPECT_GT(at_half, at_one);
  // 5 uniform draws over 8 shards touch ~4 shards in expectation.
  EXPECT_GT(at_zero, 3.0);
}

}  // namespace
}  // namespace greca
