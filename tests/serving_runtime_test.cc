// The unified serving runtime's concurrency surface (src/serve/):
//
//  * WorkspacePool — leases are exclusive, returned workspaces are reused,
//    and the high-water mark tracks peak concurrency, not call count.
//  * Racing batches — Engine::RecommendBatch no longer serializes callers
//    behind a whole-batch mutex: two threads batching concurrently against
//    one pinned snapshot, with a publisher racing them, must each reproduce
//    the serial reference bit-for-bit. Runs under the TSan CI job like every
//    test (the old workspace sharing was exactly the race TSan would flag).
//  * Pin() under a publish storm — the per-shard snapshot gather runs
//    outside pin_mu_ (see ShardedEngine::Pin); the benign race must only
//    ever cost a missed reuse, never hand out a set older than a completed
//    publish.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "serve/workspace_pool.h"
#include "shard/sharded_engine.h"

namespace greca {
namespace {

// --- WorkspacePool ----------------------------------------------------------

TEST(WorkspacePoolTest, LeasesAreExclusiveAndReused) {
  WorkspacePool pool;
  EXPECT_EQ(pool.created(), 0u);
  EXPECT_EQ(pool.idle(), 0u);

  {
    const WorkspacePool::Lease a = pool.Acquire();
    const WorkspacePool::Lease b = pool.Acquire();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(pool.created(), 2u);
    EXPECT_EQ(pool.idle(), 0u);
  }
  EXPECT_EQ(pool.idle(), 2u);

  // Re-acquiring reuses the freed workspaces instead of allocating.
  {
    const WorkspacePool::Lease a = pool.Acquire();
    const WorkspacePool::Lease b = pool.Acquire();
    EXPECT_EQ(pool.created(), 2u) << "freelist hit must not allocate";
    EXPECT_EQ(pool.idle(), 0u);
    (void)a;
    (void)b;
  }
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(WorkspacePoolTest, MovedLeaseReturnsExactlyOnce) {
  WorkspacePool pool;
  {
    WorkspacePool::Lease a = pool.Acquire();
    QueryWorkspace* ws = a.get();
    WorkspacePool::Lease b = std::move(a);
    EXPECT_EQ(b.get(), ws);
    WorkspacePool::Lease c;
    c = std::move(b);
    EXPECT_EQ(c.get(), ws);
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u) << "a moved-through lease must return once";
}

TEST(WorkspacePoolTest, HighWaterMarkTracksPeakConcurrencyNotCallCount) {
  WorkspacePool pool;
  for (int round = 0; round < 10; ++round) {
    const WorkspacePool::Lease lease = pool.Acquire();
    (void)lease;
  }
  EXPECT_EQ(pool.created(), 1u)
      << "sequential acquire/release must reuse one workspace forever";
}

// --- Racing batches ---------------------------------------------------------

class ServingRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 160;
    uc.num_items = 300;
    uc.target_ratings = 10'000;
    uc.seed = 121;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 120;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static std::vector<Query> MakeBatch(std::size_t count, std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    Rng rng(seed);
    std::vector<Query> queries;
    for (std::size_t i = 0; i < count; ++i) {
      Query q;
      const std::size_t size = 2 + rng.NextBounded(3);
      while (q.group.size() < size) {
        const auto u = static_cast<UserId>(rng.NextBounded(participants));
        if (std::find(q.group.begin(), q.group.end(), u) == q.group.end()) {
          q.group.push_back(u);
        }
      }
      q.spec.k = 5;
      q.spec.num_candidate_items = 240;
      // Duplicate every third query so the planner shares work mid-race.
      if (i % 3 == 2 && !queries.empty()) q = queries.back();
      queries.push_back(std::move(q));
    }
    return queries;
  }

  static std::vector<RatingEvent> RandomEvents(std::size_t count,
                                               std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto items = static_cast<ItemId>(universe_->dataset.num_items());
    Rng rng(seed);
    std::vector<RatingEvent> events;
    for (std::size_t i = 0; i < count; ++i) {
      events.push_back({static_cast<UserId>(rng.NextBounded(participants)),
                        static_cast<ItemId>(rng.NextBounded(items)),
                        static_cast<Score>(1 + rng.NextBounded(5)),
                        static_cast<Timestamp>(rng.NextBounded(2'000'000))});
    }
    return events;
  }

  /// Exact equality of two batch outputs (gtest-free: callable off-thread;
  /// the caller asserts the returned flag on the main thread).
  static bool BatchesEqual(const std::vector<Result<Recommendation>>& a,
                           const std::vector<Result<Recommendation>>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].ok() != b[i].ok()) return false;
      if (!a[i].ok()) {
        if (a[i].status().code() != b[i].status().code()) return false;
        continue;
      }
      if (a[i].value().items != b[i].value().items) return false;
      if (a[i].value().scores != b[i].value().scores) return false;
    }
    return true;
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* ServingRuntimeTest::universe_ = nullptr;
FacebookStudy* ServingRuntimeTest::study_ = nullptr;

// Two threads batch concurrently against one pinned snapshot while a third
// publishes updates. Every racing batch must equal the serial reference
// computed before the race — the pinned generation is immutable and each
// batch runs on its own leased workspaces, so neither the concurrent batch
// nor the publish may perturb results.
TEST_F(ServingRuntimeTest, RacingBatchesMatchSerialReferenceUnderPublish) {
  RecommenderOptions ropts;
  ropts.max_candidate_items = 240;
  EngineOptions eopts;
  eopts.num_threads = 2;
  Engine engine(universe_->dataset, *study_, ropts, eopts);

  const std::vector<Query> batch_a = MakeBatch(24, 7'001);
  const std::vector<Query> batch_b = MakeBatch(24, 7'002);
  const auto pin = engine.snapshot();
  const auto ref_a = engine.RecommendBatch(batch_a, pin, nullptr);
  const auto ref_b = engine.RecommendBatch(batch_b, pin, nullptr);

  constexpr int kRounds = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  auto racer = [&](const std::vector<Query>& batch,
                   const std::vector<Result<Recommendation>>& ref) {
    for (int r = 0; r < kRounds; ++r) {
      if (!BatchesEqual(engine.RecommendBatch(batch, pin, nullptr), ref)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::atomic<int> publish_failures{0};
  std::thread t1(racer, std::cref(batch_a), std::cref(ref_a));
  std::thread t2(racer, std::cref(batch_b), std::cref(ref_b));
  std::thread publisher([&] {
    std::uint64_t seed = 8'000;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!engine.ApplyUpdates(RandomEvents(8, seed++)).ok()) {
        publish_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  t1.join();
  t2.join();
  stop.store(true, std::memory_order_relaxed);
  publisher.join();

  EXPECT_EQ(publish_failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "a racing batch diverged from the pinned serial reference";
  // Fresh batches on the post-publish snapshot still work.
  for (const auto& r : engine.RecommendBatch(batch_a)) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

// The sharded engine's batches race the same way: concurrent RecommendBatch
// calls on one pinned set, publishes landing throughout.
TEST_F(ServingRuntimeTest, ShardedRacingBatchesMatchPinnedReference) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  options.max_candidate_items = 240;
  options.batch_threads = 2;
  ShardedEngine engine(universe_->dataset, *study_, options);

  const std::vector<Query> batch = MakeBatch(24, 7'003);
  const auto set = engine.Pin();
  const auto ref = engine.RecommendBatch(set, batch, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  auto racer = [&] {
    for (int r = 0; r < 4; ++r) {
      if (!BatchesEqual(engine.RecommendBatch(set, batch, nullptr), ref)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::atomic<int> publish_failures{0};
  std::thread t1(racer);
  std::thread t2(racer);
  std::thread publisher([&] {
    std::uint64_t seed = 9'000;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!engine.ApplyUpdates(RandomEvents(8, seed++)).ok()) {
        publish_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  t1.join();
  t2.join();
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  EXPECT_EQ(publish_failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// --- Pin() publish storm ----------------------------------------------------

// Pin()'s gather runs outside pin_mu_; the race with concurrent publishes is
// benign ONLY if reuse never resurrects a retired set. Storm: one thread
// publishes continuously and, after every publish, pins and checks the set
// reflects at least the generation it just published; reader threads hammer
// Pin() throughout to keep last_pin_ churning.
TEST_F(ServingRuntimeTest, PinNeverReusesStaleSetAcrossPublishStorm) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  options.max_candidate_items = 240;
  ShardedEngine engine(universe_->dataset, *study_, options);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto set = engine.Pin();
        // A handed-out set is internally consistent by construction; touch
        // every shard to keep TSan honest about the gather.
        for (std::size_t s = 0; s < set->num_shards(); ++s) {
          (void)set->shard(s).generation;
        }
      }
    });
  }

  std::atomic<int> stale{0};
  constexpr int kPublishes = 60;
  for (int round = 0; round < kPublishes; ++round) {
    ShardedUpdateReport report;
    ASSERT_TRUE(
        engine.ApplyUpdates(RandomEvents(6, 10'000 + round), &report).ok());
    const auto set = engine.Pin();
    // Every shard this publish touched must be visible in the very next
    // pin: a stale cached set surviving the publish would fail this.
    for (std::size_t s = 0; s < report.per_shard.size(); ++s) {
      if (set->shard(s).generation < report.per_shard[s].published_generation) {
        stale.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_EQ(stale.load(), 0)
      << "Pin() handed out a set older than a completed publish";

  // Quiescent again: reuse resumes (same set object on repeat pins).
  const auto a = engine.Pin();
  EXPECT_EQ(a.get(), engine.Pin().get());
}

}  // namespace
}  // namespace greca
