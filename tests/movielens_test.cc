// Unit tests for the MovieLens file parsers (ml-1m, ml-100k, csv formats).
#include <gtest/gtest.h>

#include <sstream>

#include "dataset/movielens.h"

namespace greca {
namespace {

TEST(MovieLensParserTest, ParsesMl1mFormat) {
  std::istringstream in(
      "1::1193::5::978300760\n"
      "1::661::3::978302109\n"
      "2::1193::4::978298413\n");
  MovieLensParseOptions opts;
  opts.format = MovieLensFormat::kMl1m;
  const auto result = ParseRatings(in, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MovieLensData& data = result.value();
  EXPECT_EQ(data.ratings.num_users(), 2u);
  EXPECT_EQ(data.ratings.num_items(), 2u);
  EXPECT_EQ(data.ratings.num_ratings(), 3u);
  // External ids preserved through the mapping.
  EXPECT_EQ(data.user_external_ids[0], 1);
  EXPECT_EQ(data.item_external_ids[0], 1193);
  const UserId u2 = data.user_id_map.at(2);
  const ItemId m1193 = data.item_id_map.at(1193);
  EXPECT_DOUBLE_EQ(data.ratings.GetRating(u2, m1193).value(), 4.0);
}

TEST(MovieLensParserTest, ParsesMl100kTabFormat) {
  std::istringstream in("196\t242\t3\t881250949\n186\t302\t3\t891717742\n");
  MovieLensParseOptions opts;
  opts.format = MovieLensFormat::kMl100k;
  const auto result = ParseRatings(in, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().ratings.num_ratings(), 2u);
}

TEST(MovieLensParserTest, ParsesCsvWithHeader) {
  std::istringstream in(
      "userId,movieId,rating,timestamp\n"
      "1,296,5.0,1147880044\n"
      "1,306,3.5,1147868817\n");
  MovieLensParseOptions opts;
  opts.format = MovieLensFormat::kCsv;
  const auto result = ParseRatings(in, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().ratings.num_ratings(), 2u);
  EXPECT_EQ(result.value().skipped_lines, 0u);
}

TEST(MovieLensParserTest, StrictModeFailsOnMalformedLine) {
  std::istringstream in("1::2::5::100\nbroken line\n");
  MovieLensParseOptions opts;
  opts.strict = true;
  const auto result = ParseRatings(in, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(MovieLensParserTest, LenientModeSkipsAndCounts) {
  std::istringstream in(
      "1::2::5::100\n"
      "garbage\n"
      "1::3::9::100\n"  // rating out of range
      "2::2::4::100\n");
  MovieLensParseOptions opts;
  opts.strict = false;
  const auto result = ParseRatings(in, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().ratings.num_ratings(), 2u);
  EXPECT_EQ(result.value().skipped_lines, 2u);
}

TEST(MovieLensParserTest, RejectsOutOfRangeRatingStrict) {
  std::istringstream in("1::2::6::100\n");
  const auto result = ParseRatings(in, {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("out of range"), std::string::npos);
}

TEST(MovieLensParserTest, EmptyInputIsError) {
  std::istringstream in("\n\n");
  const auto result = ParseRatings(in, {});
  ASSERT_FALSE(result.ok());
}

TEST(MovieLensParserTest, MissingFileIsIoError) {
  const auto result =
      ParseRatingsFile("/nonexistent/path/ratings.dat", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(MovieLensParserTest, RoundTripThroughMl1mWriter) {
  std::istringstream in("1::10::5::7\n1::11::3::8\n2::10::1::9\n");
  const auto parsed = ParseRatings(in, {});
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out;
  WriteRatingsMl1m(parsed.value().ratings, out);
  std::istringstream in2(out.str());
  const auto reparsed = ParseRatings(in2, {});
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().ratings.num_ratings(), 3u);
  EXPECT_EQ(reparsed.value().ratings.num_users(), 2u);
}

TEST(MovieLensParserTest, ParsesMoviesMetadata) {
  std::istringstream in(
      "1::Toy Story (1995)::Animation|Children's|Comedy\n"
      "2::Jumanji (1995)::Adventure|Children's|Fantasy\n");
  const auto result = ParseMovies(in, MovieLensFormat::kMl1m);
  ASSERT_TRUE(result.ok());
  const auto& movies = result.value();
  ASSERT_EQ(movies.size(), 2u);
  EXPECT_EQ(movies[0].external_id, 1);
  EXPECT_EQ(movies[0].title, "Toy Story (1995)");
  ASSERT_EQ(movies[0].genres.size(), 3u);
  EXPECT_EQ(movies[0].genres[1], "Children's");
}

TEST(MovieLensParserTest, MoviesStrictFailsOnShortLine) {
  std::istringstream in("1::Toy Story (1995)\n");
  const auto result = ParseMovies(in, MovieLensFormat::kMl1m, true);
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace greca
