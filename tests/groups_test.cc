// Tests for group formation invariants (§4.1.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "groups/group_formation.h"

namespace greca {
namespace {

/// Synthetic pair scores: users 0..9; similarity high within {0..4} and
/// within {5..9}, low across; affinity high within {0,2,4,6,8} (evens).
class GroupFormerTest : public ::testing::Test {
 protected:
  GroupFormerTest()
      : former_(
            {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
            [](UserId a, UserId b) {
              const bool same_block = (a < 5) == (b < 5);
              return same_block ? 0.9 : 0.1;
            },
            [](UserId a, UserId b) {
              const bool both_even = (a % 2 == 0) && (b % 2 == 0);
              return both_even ? 0.8 : 0.15;
            }) {}

  GroupFormer former_;
};

TEST_F(GroupFormerTest, SimilarBeatsDissimilarOnObjective) {
  const Group similar = former_.FormSimilar(4);
  const Group dissimilar = former_.FormDissimilar(4);
  EXPECT_GT(former_.SumRatingSimilarity(similar),
            former_.SumRatingSimilarity(dissimilar));
  // A similar group of 4 must come from one block entirely.
  const bool all_low = std::all_of(similar.begin(), similar.end(),
                                   [](UserId u) { return u < 5; });
  const bool all_high = std::all_of(similar.begin(), similar.end(),
                                    [](UserId u) { return u >= 5; });
  EXPECT_TRUE(all_low || all_high);
}

TEST_F(GroupFormerTest, HighAffinityPicksEvens) {
  const Group high = former_.FormHighAffinity(4);
  for (const UserId u : high) {
    EXPECT_EQ(u % 2, 0u) << "non-even member " << u;
  }
  EXPECT_GE(former_.MinPairAffinity(high), 0.4);
}

TEST_F(GroupFormerTest, LowAffinityAvoidsStrongPairs) {
  const Group low = former_.FormLowAffinity(4);
  EXPECT_LT(former_.MaxPairAffinity(low), 0.4);
  EXPECT_LT(former_.MinPairAffinity(low),
            former_.MinPairAffinity(former_.FormHighAffinity(4)));
}

TEST_F(GroupFormerTest, GroupsAreSortedDistinctAndSized) {
  for (const std::size_t size : {2u, 3u, 6u, 9u}) {
    const Group g = former_.FormSimilar(size);
    ASSERT_EQ(g.size(), size);
    std::set<UserId> distinct(g.begin(), g.end());
    EXPECT_EQ(distinct.size(), size);
    EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
  }
}

TEST_F(GroupFormerTest, RandomGroupsDeterministicPerRng) {
  Rng rng1(5), rng2(5);
  const Group a = former_.FormRandom(4, rng1);
  const Group b = former_.FormRandom(4, rng2);
  EXPECT_EQ(a, b);
  Rng rng3(6);
  int diffs = 0;
  for (int i = 0; i < 5; ++i) {
    if (former_.FormRandom(4, rng3) != a) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST_F(GroupFormerTest, RandomGroupsWithinEligible) {
  Rng rng(7);
  const Group g = former_.FormRandom(5, rng);
  for (const UserId u : g) EXPECT_LT(u, 10u);
}

TEST_F(GroupFormerTest, HelperAggregatesMatchDefinitions) {
  const Group g{0, 2, 5};
  // Pairs: (0,2) same block even-even: sim .9 aff .8;
  //        (0,5) cross: sim .1 aff .15; (2,5): sim .1 aff .15.
  EXPECT_NEAR(former_.SumRatingSimilarity(g), 1.1, 1e-12);
  EXPECT_NEAR(former_.MinPairAffinity(g), 0.15, 1e-12);
  EXPECT_NEAR(former_.MaxPairAffinity(g), 0.8, 1e-12);
}

}  // namespace
}  // namespace greca
