// The sharded engine's load-bearing contract: ShardedEngine(N) over a study
// is BIT-IDENTICAL to the monolithic Engine built from the same inputs — at
// any shard count, under both routing strategies, through a randomized
// stream of live rating batches, with and without compactions, and for
// snapshot sets pinned across publishes. "Bit-identical" covers the full
// observable surface: recommended items, scores, raw top-k access counters
// (sequential/random), rounds, and the per-batch UpdateReport attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "shard/sharded_engine.h"

namespace greca {
namespace {

class ShardedEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 240;
    uc.num_items = 400;
    uc.target_ratings = 18'000;
    uc.seed = 77;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 180;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static RecommenderOptions MonoOptions() {
    RecommenderOptions options;
    options.max_candidate_items = 360;
    options.compact_delta_fraction = 0.0;  // report parity needs no-compact
    return options;
  }

  static ShardedEngineOptions ShardOptionsFor(std::size_t num_shards,
                                              ShardStrategy strategy) {
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.strategy = strategy;
    options.max_candidate_items = 360;
    options.compact_delta_fraction = 0.0;
    return options;
  }

  static std::unique_ptr<Engine> MakeMono() {
    EngineOptions eopts;
    eopts.num_threads = 2;
    return std::make_unique<Engine>(universe_->dataset, *study_, MonoOptions(),
                                    eopts);
  }

  static std::unique_ptr<ShardedEngine> MakeSharded(std::size_t num_shards,
                                                    ShardStrategy strategy) {
    return std::make_unique<ShardedEngine>(
        universe_->dataset, *study_, ShardOptionsFor(num_shards, strategy));
  }

  /// Deterministic queries across algorithms, models, periods and sizes.
  static std::vector<Query> QueryMix() {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto num_periods =
        static_cast<PeriodId>(study_->periods.num_periods());
    const AffinityModelSpec models[] = {AffinityModelSpec::Default(),
                                        AffinityModelSpec::Continuous(),
                                        AffinityModelSpec::TimeAgnostic()};
    const Algorithm algorithms[] = {Algorithm::kGreca, Algorithm::kNaive,
                                    Algorithm::kTa};
    Rng rng(626);
    std::vector<Query> queries;
    for (std::size_t i = 0; i < 15; ++i) {
      Query q;
      const std::size_t size = 2 + rng.NextBounded(4);
      while (q.group.size() < size) {
        const auto u = static_cast<UserId>(rng.NextBounded(participants));
        if (std::find(q.group.begin(), q.group.end(), u) == q.group.end()) {
          q.group.push_back(u);
        }
      }
      q.spec.k = 4 + i % 5;
      q.spec.model = models[i % 3];
      q.spec.algorithm = algorithms[(i / 3) % 3];
      q.spec.num_candidate_items = 360;
      q.spec.eval_period = static_cast<PeriodId>(i % num_periods);
      queries.push_back(std::move(q));
    }
    return queries;
  }

  static std::vector<RatingEvent> RandomEvents(std::size_t count,
                                               std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto items = static_cast<ItemId>(universe_->dataset.num_items());
    Rng rng(seed);
    std::vector<RatingEvent> events;
    for (std::size_t i = 0; i < count; ++i) {
      RatingEvent e;
      e.user = static_cast<UserId>(rng.NextBounded(participants));
      e.item = static_cast<ItemId>(rng.NextBounded(items));
      e.rating = static_cast<Score>(1 + rng.NextBounded(5));
      e.timestamp = static_cast<Timestamp>(rng.NextBounded(3'000'000'000));
      events.push_back(e);
    }
    return events;
  }

  static std::vector<Recommendation> RunMono(const Engine& engine,
                                             const std::vector<Query>& mix) {
    std::vector<Recommendation> out;
    const auto snap = engine.snapshot();
    for (const Query& q : mix) {
      auto r = engine.Recommend(q, snap);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(std::move(r.value()));
    }
    return out;
  }

  static std::vector<Recommendation> RunSharded(
      const ShardedEngine& engine, const std::vector<Query>& mix) {
    std::vector<Recommendation> out;
    const auto set = engine.Pin();
    QueryWorkspace ws;
    for (const Query& q : mix) {
      auto r = engine.Recommend(set, q.group, q.spec, &ws);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(std::move(r.value()));
    }
    return out;
  }

  /// The full observable surface must match, not just the item lists: equal
  /// access counters prove the assembled problems were identical, not merely
  /// that two different problems happened to rank items the same way.
  static void ExpectBitIdentical(const std::vector<Recommendation>& mono,
                                 const std::vector<Recommendation>& sharded,
                                 const char* label) {
    ASSERT_EQ(mono.size(), sharded.size());
    for (std::size_t i = 0; i < mono.size(); ++i) {
      const Recommendation& a = mono[i];
      const Recommendation& b = sharded[i];
      EXPECT_EQ(a.items, b.items) << label << " query " << i;
      EXPECT_EQ(a.scores, b.scores) << label << " query " << i;
      EXPECT_EQ(a.raw.accesses.sequential, b.raw.accesses.sequential)
          << label << " query " << i;
      EXPECT_EQ(a.raw.accesses.random, b.raw.accesses.random)
          << label << " query " << i;
      EXPECT_EQ(a.raw.total_entries, b.raw.total_entries)
          << label << " query " << i;
      EXPECT_EQ(a.raw.rounds, b.raw.rounds) << label << " query " << i;
      EXPECT_EQ(a.raw.early_terminated, b.raw.early_terminated)
          << label << " query " << i;
    }
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* ShardedEquivalenceTest::universe_ = nullptr;
FacebookStudy* ShardedEquivalenceTest::study_ = nullptr;

// --- Router invariants ------------------------------------------------------

TEST(ShardRouterTest, PartitionCoversEveryUserExactlyOnce) {
  for (const ShardStrategy strategy :
       {ShardStrategy::kHash, ShardStrategy::kRange}) {
    for (const std::size_t n : {1u, 2u, 4u, 7u}) {
      const ShardRouter router(n, 523, strategy);
      const auto owned = router.PartitionUsers();
      ASSERT_EQ(owned.size(), n);
      std::vector<bool> seen(523, false);
      for (std::size_t s = 0; s < n; ++s) {
        ASSERT_TRUE(std::is_sorted(owned[s].begin(), owned[s].end()));
        for (const UserId u : owned[s]) {
          EXPECT_EQ(router.ShardOf(u), s);
          EXPECT_FALSE(seen[u]) << "user " << u << " owned twice";
          seen[u] = true;
        }
      }
      EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                              [](bool b) { return b; }));
    }
  }
}

TEST(ShardRouterTest, RangeStrategyKeepsNeighborsTogether) {
  const ShardRouter router(4, 1000, ShardStrategy::kRange);
  EXPECT_EQ(router.ShardOf(0), 0u);
  EXPECT_EQ(router.ShardOf(249), 0u);
  EXPECT_EQ(router.ShardOf(250), 1u);
  EXPECT_EQ(router.ShardOf(999), 3u);
}

// --- The tentpole: bit-identity at every shard count ------------------------

TEST_F(ShardedEquivalenceTest, FreshEnginesAreBitIdentical) {
  const auto mono = MakeMono();
  const std::vector<Query> mix = QueryMix();
  const auto baseline = RunMono(*mono, mix);

  for (const std::size_t n : {1u, 2u, 4u, 7u}) {
    const auto sharded = MakeSharded(n, ShardStrategy::kHash);
    EXPECT_EQ(sharded->num_shards(), n);
    ExpectBitIdentical(baseline, RunSharded(*sharded, mix), "hash-fresh");
  }
  const auto range = MakeSharded(4, ShardStrategy::kRange);
  ExpectBitIdentical(baseline, RunSharded(*range, mix), "range-fresh");
}

// A randomized update stream applied to the monolithic engine and to
// ShardedEngine(N in {1, 2, 4, 7}) must keep recommendations bit-identical
// after EVERY batch, and the summed per-shard attribution must equal the
// monolithic report exactly (the event partition is by user, so applied /
// stale / users_rebuilt totals cannot differ).
TEST_F(ShardedEquivalenceTest, RandomizedUpdateStreamEquivalence) {
  const auto mono = MakeMono();
  std::vector<std::unique_ptr<ShardedEngine>> fleet;
  for (const std::size_t n : {1u, 2u, 4u, 7u}) {
    fleet.push_back(MakeSharded(n, ShardStrategy::kHash));
  }
  fleet.push_back(MakeSharded(4, ShardStrategy::kRange));
  const std::vector<Query> mix = QueryMix();

  for (std::uint64_t batch = 0; batch < 6; ++batch) {
    const std::vector<RatingEvent> events = RandomEvents(20, 1'700 + batch);

    UpdateReport mono_report;
    ASSERT_TRUE(mono->ApplyUpdates(events, &mono_report).ok());
    const auto baseline = RunMono(*mono, mix);

    for (const auto& sharded : fleet) {
      ShardedUpdateReport report;
      ASSERT_TRUE(sharded->ApplyUpdates(events, &report).ok());

      EXPECT_EQ(report.total.events_applied, mono_report.events_applied)
          << "batch " << batch << " shards " << sharded->num_shards();
      EXPECT_EQ(report.total.events_ignored_stale,
                mono_report.events_ignored_stale)
          << "batch " << batch << " shards " << sharded->num_shards();
      EXPECT_EQ(report.total.users_rebuilt, mono_report.users_rebuilt)
          << "batch " << batch << " shards " << sharded->num_shards();
      EXPECT_EQ(report.total.delta_log_ratings, mono_report.delta_log_ratings)
          << "batch " << batch << " shards " << sharded->num_shards();
      EXPECT_FALSE(report.total.compacted);
      EXPECT_EQ(report.total.events_applied +
                    report.total.events_ignored_stale,
                events.size());

      // Per-shard attribution is internally consistent: the totals are
      // sums over exactly the touched shards.
      std::size_t applied = 0, stale = 0, rebuilt = 0, touched = 0;
      ASSERT_EQ(report.per_shard.size(), sharded->num_shards());
      for (const UpdateReport& r : report.per_shard) {
        applied += r.events_applied;
        stale += r.events_ignored_stale;
        rebuilt += r.users_rebuilt;
        if (r.events_applied + r.events_ignored_stale > 0) ++touched;
      }
      EXPECT_EQ(applied, report.total.events_applied);
      EXPECT_EQ(stale, report.total.events_ignored_stale);
      EXPECT_EQ(rebuilt, report.total.users_rebuilt);
      EXPECT_LE(touched, report.shards_touched);
      EXPECT_GE(report.shards_touched, 1u);
      EXPECT_LE(report.shards_touched, sharded->num_shards());

      ExpectBitIdentical(baseline, RunSharded(*sharded, mix),
                         "post-update");
    }
  }
}

// Compaction is a per-shard policy triggering at per-shard cadences that
// can never line up with the monolithic engine's — and must still be
// unobservable in the recommendations.
TEST_F(ShardedEquivalenceTest, CompactionIsUnobservableAcrossShardCounts) {
  const auto mono = MakeMono();  // never compacts
  ShardedEngineOptions copts = ShardOptionsFor(4, ShardStrategy::kHash);
  copts.compact_every_n_publishes = 2;  // aggressive per-shard cadence
  const auto sharded =
      std::make_unique<ShardedEngine>(universe_->dataset, *study_, copts);
  const std::vector<Query> mix = QueryMix();

  bool saw_compaction = false;
  for (std::uint64_t batch = 0; batch < 6; ++batch) {
    const std::vector<RatingEvent> events = RandomEvents(24, 2'900 + batch);
    ASSERT_TRUE(mono->ApplyUpdates(events).ok());
    ShardedUpdateReport report;
    ASSERT_TRUE(sharded->ApplyUpdates(events, &report).ok());
    saw_compaction = saw_compaction || report.total.compacted;
    ExpectBitIdentical(RunMono(*mono, mix), RunSharded(*sharded, mix),
                       "compacting-shards");
  }
  EXPECT_TRUE(saw_compaction) << "the cadence never fired; test is vacuous";
}

// A pinned ShardedSnapshotSet is a cross-shard fence: publishes landing
// after the pin must not perturb it, and it must keep answering exactly
// like the monolithic snapshot pinned at the same instant.
TEST_F(ShardedEquivalenceTest, PinnedSetSurvivesConcurrentPublishes) {
  const auto mono = MakeMono();
  const auto sharded = MakeSharded(4, ShardStrategy::kHash);
  const std::vector<Query> mix = QueryMix();

  const auto mono_pin = mono->snapshot();
  const auto shard_pin = sharded->Pin();

  std::vector<Recommendation> before;
  {
    QueryWorkspace ws;
    for (const Query& q : mix) {
      auto r = sharded->Recommend(shard_pin, q.group, q.spec, &ws);
      ASSERT_TRUE(r.ok());
      before.push_back(std::move(r.value()));
    }
  }

  for (std::uint64_t batch = 0; batch < 3; ++batch) {
    const std::vector<RatingEvent> events = RandomEvents(24, 5'100 + batch);
    ASSERT_TRUE(mono->ApplyUpdates(events).ok());
    ShardedUpdateReport report;
    ASSERT_TRUE(sharded->ApplyUpdates(events, &report).ok());
    EXPECT_GE(report.shards_touched, 1u);
  }

  // The retired generations replay bit-identically...
  std::vector<Recommendation> replay;
  {
    QueryWorkspace ws;
    for (const Query& q : mix) {
      auto r = sharded->Recommend(shard_pin, q.group, q.spec, &ws);
      ASSERT_TRUE(r.ok());
      replay.push_back(std::move(r.value()));
    }
  }
  ExpectBitIdentical(before, replay, "pinned-replay");

  // ...still matching the monolithic snapshot pinned at the same instant...
  std::vector<Recommendation> mono_before;
  for (const Query& q : mix) {
    auto r = mono->Recommend(q, mono_pin);
    ASSERT_TRUE(r.ok());
    mono_before.push_back(std::move(r.value()));
  }
  ExpectBitIdentical(mono_before, replay, "pinned-vs-mono-pin");

  // ...while fresh pins see the post-update world, also identically.
  ExpectBitIdentical(RunMono(*mono, mix), RunSharded(*sharded, mix),
                     "fresh-after-pin");
}

// Validation is all-or-nothing on both paths with matching status codes:
// one bad event anywhere must leave every shard untouched.
TEST_F(ShardedEquivalenceTest, ValidationParityAndAtomicity) {
  const auto mono = MakeMono();
  const auto sharded = MakeSharded(4, ShardStrategy::kHash);

  const auto participants = static_cast<UserId>(study_->num_participants());
  const auto items = static_cast<ItemId>(universe_->dataset.num_items());
  std::vector<RatingEvent> bad_user = {{5, 7, 4.0, 100},
                                       {participants, 7, 4.0, 100}};
  std::vector<RatingEvent> bad_item = {{5, 7, 4.0, 100},
                                       {6, items, 4.0, 100}};
  std::vector<RatingEvent> bad_rating = {
      {5, 7, std::numeric_limits<Score>::quiet_NaN(), 100}};

  for (const auto& batch : {bad_user, bad_item, bad_rating}) {
    const Status ms = mono->ApplyUpdates(batch);
    ShardedUpdateReport report;
    const Status ss = sharded->ApplyUpdates(batch, &report);
    EXPECT_FALSE(ms.ok());
    EXPECT_FALSE(ss.ok());
    EXPECT_EQ(ms.code(), ss.code());
  }
  // Nothing was applied anywhere: every shard still serves generation 1.
  const auto set = sharded->Pin();
  for (std::size_t s = 0; s < sharded->num_shards(); ++s) {
    EXPECT_EQ(set->shard(s).generation, 1u);
    EXPECT_EQ(set->shard(s).ratings->delta_ratings(), 0u);
  }

  // Query validation parity: same codes for the same bad queries.
  const std::vector<UserId> good_group = {1, 2, 3};
  QuerySpec spec;
  spec.num_candidate_items = 360;
  Query q;
  q.group = good_group;
  q.spec = spec;

  q.group = {};
  EXPECT_EQ(mono->Recommend(q).status().code(),
            sharded->ValidateQuery(q.group, q.spec).code());
  q.group = {1, 1};
  EXPECT_EQ(mono->Recommend(q).status().code(),
            sharded->ValidateQuery(q.group, q.spec).code());
  q.group = {1, participants};
  EXPECT_EQ(mono->Recommend(q).status().code(),
            sharded->ValidateQuery(q.group, q.spec).code());
  q.group = good_group;
  q.spec.k = 0;
  EXPECT_EQ(mono->Recommend(q).status().code(),
            sharded->ValidateQuery(q.group, q.spec).code());
  q.spec = spec;
  q.spec.eval_period = static_cast<PeriodId>(study_->periods.num_periods());
  EXPECT_EQ(mono->Recommend(q).status().code(),
            sharded->ValidateQuery(q.group, q.spec).code());
}

TEST_F(ShardedEquivalenceTest, ShardsTouchedMatchesRouterPlacement) {
  const auto sharded = MakeSharded(4, ShardStrategy::kRange);
  const auto& router = sharded->router();
  // Users from one kRange block touch exactly one shard.
  const std::vector<UserId> local = {0, 1, 2};
  EXPECT_EQ(sharded->ShardsTouched(local), 1u);
  // One member per block touches all four.
  const std::size_t block =
      (router.num_users() + 3) / 4;  // kRange block width
  std::vector<UserId> scattered;
  for (std::size_t s = 0; s < 4; ++s) {
    scattered.push_back(static_cast<UserId>(s * block));
  }
  EXPECT_EQ(sharded->ShardsTouched(scattered), 4u);
}

// Concurrent writers + readers on one ShardedEngine. Pinned-set queries must
// stay bit-stable however many publishes land around them, and every report
// must attribute its batch exactly. The TSan CI job runs this against the
// real races (snapshot swaps, group-commit handoff, scatter/gather reads).
TEST_F(ShardedEquivalenceTest, ConcurrentWritersAndPinnedReaders) {
  const auto sharded = MakeSharded(4, ShardStrategy::kHash);
  const std::vector<Query> mix = QueryMix();
  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kBatches = 5;
  constexpr std::size_t kEvents = 12;

  const auto pinned = sharded->Pin();
  const auto before = RunSharded(*sharded, mix);

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t b = 0; b < kBatches; ++b) {
        // Globally unique timestamps make the final fold order-independent.
        std::vector<RatingEvent> events =
            RandomEvents(kEvents, 7'000 + t * kBatches + b);
        for (std::size_t i = 0; i < events.size(); ++i) {
          events[i].timestamp = static_cast<Timestamp>(
              3'000'000'000 + ((t * kBatches + b) * kEvents + i));
        }
        ShardedUpdateReport report;
        EXPECT_TRUE(sharded->ApplyUpdates(events, &report).ok());
        EXPECT_EQ(report.total.events_applied +
                      report.total.events_ignored_stale,
                  kEvents);
      }
    });
  }
  workers.emplace_back([&] {
    QueryWorkspace ws;
    for (std::size_t round = 0; round < 4; ++round) {
      // The pre-update pin answers identically mid-publish...
      for (std::size_t i = 0; i < mix.size(); ++i) {
        auto r = sharded->Recommend(pinned, mix[i].group, mix[i].spec, &ws);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.value().items, before[i].items) << "round " << round;
        EXPECT_EQ(r.value().scores, before[i].scores) << "round " << round;
      }
      // ...while fresh pins serve whatever generation mix is current.
      for (const Query& q : mix) {
        auto r = sharded->Recommend(q.group, q.spec, &ws);
        ASSERT_TRUE(r.ok());
        EXPECT_FALSE(r.value().items.empty());
      }
    }
  });
  for (auto& w : workers) w.join();

  // Post-join determinism check: the same events through a fresh sharded
  // engine AND a monolithic engine (any application order — timestamps are
  // unique) give the final state's recommendations.
  const auto mono = MakeMono();
  std::vector<RatingEvent> all;
  for (std::size_t t = 0; t < kWriters; ++t) {
    for (std::size_t b = 0; b < kBatches; ++b) {
      std::vector<RatingEvent> events =
          RandomEvents(kEvents, 7'000 + t * kBatches + b);
      for (std::size_t i = 0; i < events.size(); ++i) {
        events[i].timestamp = static_cast<Timestamp>(
            3'000'000'000 + ((t * kBatches + b) * kEvents + i));
      }
      all.insert(all.end(), events.begin(), events.end());
    }
  }
  ASSERT_TRUE(mono->ApplyUpdates(all).ok());
  ExpectBitIdentical(RunMono(*mono, mix), RunSharded(*sharded, mix),
                     "post-concurrency");
}

}  // namespace
}  // namespace greca
