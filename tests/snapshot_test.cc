// Tests for the snapshot-centric serving API: RCU-style publish semantics
// (pinned generations are immutable under concurrent updates), the
// live-update path (ApplyUpdates rebuilds predictions + index rows +
// tombstones), the snapshot-scoped period-list cache, and the
// affinity-swap-mid-batch regression the old API documented as racy.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/query_builder.h"
#include "common/rng.h"

namespace greca {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 350;
    uc.num_items = 450;
    uc.target_ratings = 30'000;
    uc.seed = 33;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 200;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static std::unique_ptr<Engine> MakeEngine(std::size_t threads = 4) {
    RecommenderOptions options;
    options.max_candidate_items = 400;
    EngineOptions eopts;
    eopts.num_threads = threads;
    return std::make_unique<Engine>(*universe_, *study_, options, eopts);
  }

  /// A mixed batch exercising all algorithms, models and several periods.
  static std::vector<Query> MixedBatch(const Engine& engine,
                                       std::size_t count,
                                       std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto num_periods =
        static_cast<PeriodId>(engine.recommender().num_periods());
    const AffinityModelSpec models[] = {
        AffinityModelSpec::Default(), AffinityModelSpec::Continuous(),
        AffinityModelSpec::TimeAgnostic()};
    const Algorithm algorithms[] = {Algorithm::kGreca, Algorithm::kNaive,
                                    Algorithm::kTa};
    Rng rng(seed);
    std::vector<Query> batch;
    for (std::size_t i = 0; i < count; ++i) {
      Query q;
      const std::size_t size = 2 + rng.NextInt(0, 4);
      while (q.group.size() < size) {
        const auto u =
            static_cast<UserId>(rng.NextInt(0, participants - 1));
        if (std::find(q.group.begin(), q.group.end(), u) == q.group.end()) {
          q.group.push_back(u);
        }
      }
      q.spec.k = 3 + i % 6;
      q.spec.model = models[i % 3];
      q.spec.algorithm = algorithms[i % 3];
      q.spec.num_candidate_items = 400;
      q.spec.eval_period = static_cast<PeriodId>(i % num_periods);
      batch.push_back(std::move(q));
    }
    return batch;
  }

  static std::vector<RatingEvent> RandomEvents(std::size_t count,
                                               std::uint64_t seed) {
    const auto participants = static_cast<UserId>(study_->num_participants());
    const auto items = static_cast<ItemId>(universe_->dataset.num_items());
    Rng rng(seed);
    std::vector<RatingEvent> events;
    for (std::size_t i = 0; i < count; ++i) {
      RatingEvent e;
      e.user = static_cast<UserId>(rng.NextInt(0, participants - 1));
      e.item = static_cast<ItemId>(rng.NextInt(0, items - 1));
      e.rating = static_cast<Score>(1 + rng.NextInt(0, 4));
      // Far-future timestamps so every event overrides any stored rating.
      e.timestamp = 1'000'000'000 + static_cast<Timestamp>(i);
      events.push_back(e);
    }
    return events;
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* SnapshotTest::universe_ = nullptr;
FacebookStudy* SnapshotTest::study_ = nullptr;

TEST_F(SnapshotTest, GenerationsIncrementAndReportsFill) {
  auto engine = MakeEngine();
  const auto g1 = engine->snapshot();
  EXPECT_EQ(g1->generation(), 1u);

  UpdateReport report;
  ASSERT_TRUE(engine->ApplyUpdates(RandomEvents(16, 7), &report).ok());
  EXPECT_EQ(report.published_generation, 2u);
  EXPECT_EQ(report.events_applied, 16u);
  EXPECT_GE(report.users_rebuilt, 1u);
  EXPECT_LE(report.users_rebuilt, 16u);
  EXPECT_EQ(engine->snapshot()->generation(), 2u);
  // The pinned generation-1 snapshot is untouched.
  EXPECT_EQ(g1->generation(), 1u);

  // Affinity swaps publish too.
  auto base = std::make_shared<StudyAffinitySource>(
      engine->recommender().static_affinity(),
      engine->recommender().periodic_affinity());
  ASSERT_TRUE(engine
                  ->UpdateAffinitySource(
                      std::make_shared<DecayWeightedAffinitySource>(base, 0.5))
                  .ok());
  EXPECT_EQ(engine->snapshot()->generation(), 3u);

  // Empty batches publish nothing (every generation means a state change).
  ASSERT_TRUE(engine->ApplyUpdates({}, &report).ok());
  EXPECT_EQ(report.events_applied, 0u);
  EXPECT_EQ(engine->snapshot()->generation(), 3u);
}

TEST_F(SnapshotTest, InvalidEventsRejectAtomically) {
  auto engine = MakeEngine();
  std::vector<RatingEvent> events = RandomEvents(4, 11);
  events[2].user = 10'000;  // unknown study participant
  auto status = engine->ApplyUpdates(events);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->snapshot()->generation(), 1u) << "nothing published";

  events = RandomEvents(4, 13);
  events[0].item = 1'000'000;  // unknown universe item
  status = engine->ApplyUpdates(events);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine->snapshot()->generation(), 1u);

  // Non-finite ratings would poison the fold (NaN similarities) forever.
  events = RandomEvents(4, 19);
  events[3].rating = std::numeric_limits<Score>::quiet_NaN();
  status = engine->ApplyUpdates(events);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->snapshot()->generation(), 1u);

  // A null explicit snapshot is a Status, not a crash.
  Query query;
  query.group = {4, 17};
  query.spec.k = 3;
  const auto null_snap = engine->Recommend(query, nullptr);
  ASSERT_FALSE(null_snap.ok());
  EXPECT_EQ(null_snap.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, WrappingEngineRejectsUpdates) {
  auto engine = MakeEngine();
  Engine wrapping(engine->recommender());
  EXPECT_EQ(wrapping.ApplyUpdates(RandomEvents(2, 3)).code(),
            StatusCode::kFailedPrecondition);
  auto base = std::make_shared<StudyAffinitySource>(
      engine->recommender().static_affinity(),
      engine->recommender().periodic_affinity());
  EXPECT_EQ(wrapping.UpdateAffinitySource(base).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(wrapping.UpdateAffinitySource(nullptr).code(),
            StatusCode::kInvalidArgument);

  // But it serves snapshots its owner publishes.
  ASSERT_TRUE(engine->ApplyUpdates(RandomEvents(4, 5)).ok());
  EXPECT_EQ(wrapping.snapshot()->generation(), 2u);
}

// The tentpole guarantee: a batch pinned to generation G returns
// bit-identical results whether or not updates publish G+1 (and G+2, ...)
// mid-stream. Randomized over groups, specs and event batches.
TEST_F(SnapshotTest, PinnedBatchIsImmuneToConcurrentPublishes) {
  auto engine = MakeEngine();
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    const auto pinned = engine->snapshot();
    const std::vector<Query> batch = MixedBatch(*engine, 24, 100 + trial);
    const auto before = engine->RecommendBatch(batch, pinned);

    // Publish one or two newer generations: rating updates always, an
    // affinity swap on odd trials.
    ASSERT_TRUE(engine->ApplyUpdates(RandomEvents(32, 200 + trial)).ok());
    if (trial % 2 == 1) {
      auto base = std::make_shared<StudyAffinitySource>(
          engine->recommender().static_affinity(),
          engine->recommender().periodic_affinity());
      ASSERT_TRUE(engine
                      ->UpdateAffinitySource(
                          std::make_shared<DecayWeightedAffinitySource>(
                              base, 0.5 + 0.1 * static_cast<double>(trial)))
                      .ok());
    }
    EXPECT_GT(engine->snapshot()->generation(), pinned->generation());

    // Replaying against the pinned snapshot is bit-identical.
    const auto after = engine->RecommendBatch(batch, pinned);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(before[i].ok()) << "trial " << trial << " query " << i;
      ASSERT_TRUE(after[i].ok()) << "trial " << trial << " query " << i;
      EXPECT_EQ(before[i].value().items, after[i].value().items)
          << "trial " << trial << " query " << i;
      EXPECT_EQ(before[i].value().scores, after[i].value().scores)
          << "trial " << trial << " query " << i;
    }

    // The current snapshot serves the same batch without error (results may
    // legitimately differ — the data changed).
    for (const auto& r : engine->RecommendBatch(batch)) {
      EXPECT_TRUE(r.ok());
    }
  }
}

// Live ratings must actually change serving: rating an item for every
// member tombstones it out of that group's candidates (§2.4 exclusion).
TEST_F(SnapshotTest, AppliedRatingsTombstoneRecommendedItems) {
  auto engine = MakeEngine();
  Query query;
  query.group = {4, 17, 29};
  query.spec.k = 5;
  query.spec.num_candidate_items = 400;

  const auto before = engine->Recommend(query);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before.value().items.empty());
  const ItemId top = before.value().items[0];

  std::vector<RatingEvent> events;
  for (const UserId member : query.group) {
    events.push_back({member, top, 5.0, 2'000'000'000});
  }
  ASSERT_TRUE(engine->ApplyUpdates(events).ok());

  const auto after = engine->Recommend(query);
  ASSERT_TRUE(after.ok());
  for (const ItemId item : after.value().items) {
    EXPECT_NE(item, top) << "group-rated item still recommended";
  }
  // The update also lands in the snapshot's merged ratings view (the delta
  // log, not the immutable base).
  EXPECT_TRUE(engine->snapshot()->ratings().HasRating(4, top));
  EXPECT_FALSE(engine->snapshot()->ratings().base().HasRating(4, top));
}

// Period-list cache: the first query for a (group, period) materializes, a
// repeated group served from the same snapshot rebuilds nothing.
TEST_F(SnapshotTest, PeriodCacheHitsOnRepeatedGroups) {
  auto engine = MakeEngine();
  const auto snap = engine->snapshot();
  const auto last_period =
      static_cast<PeriodId>(engine->recommender().num_periods() - 1);
  const std::size_t periods = static_cast<std::size_t>(last_period) + 1;

  Query query;
  query.group = {4, 17, 29};
  query.spec.k = 5;
  query.spec.num_candidate_items = 400;
  query.spec.eval_period = last_period;  // touches every period list

  EXPECT_EQ(snap->period_cache_hits(), 0u);
  EXPECT_EQ(snap->period_cache_misses(), 0u);

  ASSERT_TRUE(engine->Recommend(query, snap).ok());
  EXPECT_EQ(snap->period_cache_misses(), periods);
  EXPECT_EQ(snap->period_cache_hits(), 0u);
  EXPECT_EQ(snap->period_cache_size(), periods);

  // Second identical query: zero pair-list rebuild work — every period list
  // is a cache hit and no new list is materialized.
  ASSERT_TRUE(engine->Recommend(query, snap).ok());
  EXPECT_EQ(snap->period_cache_misses(), periods) << "no rebuild on repeat";
  EXPECT_EQ(snap->period_cache_hits(), periods);
  EXPECT_EQ(snap->period_cache_size(), periods);

  // A different group misses again (cache is keyed by (group, period)).
  Query other = query;
  other.group = {3, 11};
  ASSERT_TRUE(engine->Recommend(other, snap).ok());
  EXPECT_EQ(snap->period_cache_misses(), 2 * periods);
  EXPECT_EQ(snap->period_cache_size(), 2 * periods);

  EXPECT_GT(snap->PeriodCacheMemoryBytes(), 0u);

  // Rating updates do not change the affinity binding, so the next
  // generation CARRIES the cache — the repeated group stays warm across a
  // steady update stream.
  ASSERT_TRUE(engine->ApplyUpdates(RandomEvents(4, 17)).ok());
  const auto next = engine->snapshot();
  EXPECT_EQ(next->period_cache_size(), 2 * periods);
  EXPECT_EQ(next->period_cache_misses(), 2 * periods);
  const auto hits_before = next->period_cache_hits();
  ASSERT_TRUE(engine->Recommend(query, next).ok());
  EXPECT_EQ(next->period_cache_misses(), 2 * periods) << "still warm";
  EXPECT_EQ(next->period_cache_hits(), hits_before + periods);

  // An affinity-source swap DOES change the lists: its generation starts a
  // cold cache, and dropping the old generations drops theirs.
  auto base = std::make_shared<StudyAffinitySource>(
      engine->recommender().static_affinity(),
      engine->recommender().periodic_affinity());
  ASSERT_TRUE(engine
                  ->UpdateAffinitySource(
                      std::make_shared<DecayWeightedAffinitySource>(base, 0.7))
                  .ok());
  const auto swapped = engine->snapshot();
  EXPECT_EQ(swapped->period_cache_misses(), 0u);
  EXPECT_EQ(swapped->period_cache_size(), 0u);
  EXPECT_EQ(swapped->PeriodCacheMemoryBytes(), 0u);
}

// The period-list cache is bounded: entries past the cap evict least
// recently used, the eviction counter sits next to hit/miss, and a
// GetShared/PeriodListShared copy held by a query survives its own eviction.
TEST_F(SnapshotTest, PeriodCacheEvictsLeastRecentlyUsedPastCap) {
  const auto last_period =
      static_cast<PeriodId>(study_->periods.num_periods() - 1);
  const std::size_t periods = static_cast<std::size_t>(last_period) + 1;

  RecommenderOptions options;
  options.max_candidate_items = 400;
  options.period_cache_max_entries = periods;  // exactly one group fits
  EngineOptions eopts;
  eopts.num_threads = 2;
  auto engine = std::make_unique<Engine>(*universe_, *study_, options, eopts);
  const auto snap = engine->snapshot();

  Query query;
  query.group = {4, 17, 29};
  query.spec.k = 5;
  query.spec.num_candidate_items = 400;
  query.spec.eval_period = last_period;  // touches every period list

  // Group A fills the cache to the cap without evicting.
  ASSERT_TRUE(engine->Recommend(query, snap).ok());
  const auto first = engine->Recommend(query, snap);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(snap->period_cache_size(), periods);
  EXPECT_EQ(snap->period_cache_evictions(), 0u);
  EXPECT_EQ(snap->period_cache_hits(), periods) << "repeat was all hits";

  // Hold one of A's lists across the churn below.
  const std::shared_ptr<const SortedList> pinned =
      snap->PeriodListShared(query.group, 0);

  // Group B displaces A entry by entry; the size never passes the cap.
  Query other = query;
  other.group = {3, 11};
  ASSERT_TRUE(engine->Recommend(other, snap).ok());
  EXPECT_EQ(snap->period_cache_size(), periods);
  EXPECT_EQ(snap->period_cache_evictions(), periods);

  // B is resident (all hits), A was evicted (all misses again) — LRU, not
  // random or insertion-order eviction.
  const auto hits_before = snap->period_cache_hits();
  const auto misses_before = snap->period_cache_misses();
  ASSERT_TRUE(engine->Recommend(other, snap).ok());
  EXPECT_EQ(snap->period_cache_hits(), hits_before + periods);
  EXPECT_EQ(snap->period_cache_misses(), misses_before);
  const auto replay = engine->Recommend(query, snap);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(snap->period_cache_misses(), misses_before + periods)
      << "evicted lists rebuild from scratch";

  // Eviction is invisible to results: the rebuilt lists answer identically.
  EXPECT_EQ(first.value().items, replay.value().items);
  EXPECT_EQ(first.value().scores, replay.value().scores);

  // The held copy outlived its eviction and still matches a direct
  // materialization.
  const SortedList direct =
      snap->affinity().MaterializePeriodList(query.group, 0);
  ASSERT_EQ(pinned->size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(pinned->entry(i).id, direct.entry(i).id);
    EXPECT_EQ(pinned->entry(i).score, direct.entry(i).score);
  }

  // An unbounded cache (cap 0) never evicts under the same workload.
  RecommenderOptions unbounded = options;
  unbounded.period_cache_max_entries = 0;
  auto engine2 =
      std::make_unique<Engine>(*universe_, *study_, unbounded, eopts);
  const auto snap2 = engine2->snapshot();
  ASSERT_TRUE(engine2->Recommend(query, snap2).ok());
  ASSERT_TRUE(engine2->Recommend(other, snap2).ok());
  EXPECT_EQ(snap2->period_cache_size(), 2 * periods);
  EXPECT_EQ(snap2->period_cache_evictions(), 0u);
}

// Cached lists must be identical to freshly materialized ones (the cache is
// a pure memoization, not an approximation).
TEST_F(SnapshotTest, CachedPeriodListsMatchDirectMaterialization) {
  auto engine = MakeEngine();
  const auto snap = engine->snapshot();
  const std::vector<UserId> group = {2, 9, 23, 31};
  const auto last_period =
      static_cast<PeriodId>(engine->recommender().num_periods() - 1);
  for (PeriodId p = 0; p <= last_period; ++p) {
    const SortedList& cached = snap->PeriodList(group, p);
    const SortedList direct = snap->affinity().MaterializePeriodList(group, p);
    ASSERT_EQ(cached.size(), direct.size()) << "period " << p;
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(cached.entry(i).id, direct.entry(i).id) << "period " << p;
      EXPECT_EQ(cached.entry(i).score, direct.entry(i).score)
          << "period " << p;
    }
    // Second lookup returns the same stable address.
    EXPECT_EQ(&snap->PeriodList(group, p), &cached);
  }
}

// Regression for the old documented race: swapping the affinity source while
// batches are in flight. Under ASan/TSan this must be clean, and every
// result must be either the old or the new source's answer — never a blend.
TEST_F(SnapshotTest, AffinitySwapMidBatchIsSafe) {
  auto engine = MakeEngine(/*threads=*/3);
  const std::vector<Query> batch = MixedBatch(*engine, 32, 424);

  auto base = std::make_shared<StudyAffinitySource>(
      engine->recommender().static_affinity(),
      engine->recommender().periodic_affinity());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const double decay = (i++ % 2 == 0) ? 1.0 : 0.3;
      ASSERT_TRUE(engine
                      ->UpdateAffinitySource(
                          std::make_shared<DecayWeightedAffinitySource>(base,
                                                                        decay))
                      .ok());
      std::this_thread::yield();
    }
  });

  // Consistency oracle: each batch pins one snapshot, so its results must
  // equal a sequential replay against that same snapshot.
  for (int round = 0; round < 8; ++round) {
    const auto pinned = engine->snapshot();
    const auto results = engine->RecommendBatch(batch, pinned);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << "round " << round << " query " << i;
      const auto replay = engine->Recommend(batch[i], pinned);
      ASSERT_TRUE(replay.ok());
      EXPECT_EQ(results[i].value().items, replay.value().items)
          << "round " << round << " query " << i;
      EXPECT_EQ(results[i].value().scores, replay.value().scores)
          << "round " << round << " query " << i;
    }
  }
  stop.store(true);
  writer.join();
}

// Rating updates racing a query stream: queries must never crash or error,
// and every RecommendBatch must be internally consistent with the one
// snapshot it pinned. (The ASan/TSan CI jobs turn latent races into
// failures here.)
TEST_F(SnapshotTest, RatingUpdatesRacingQueriesAreSafe) {
  auto engine = MakeEngine(/*threads=*/3);
  const std::vector<Query> batch = MixedBatch(*engine, 24, 777);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t seed = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(engine->ApplyUpdates(RandomEvents(8, seed++)).ok());
      std::this_thread::yield();
    }
  });

  for (int round = 0; round < 8; ++round) {
    for (const auto& r : engine->RecommendBatch(batch)) {
      ASSERT_TRUE(r.ok()) << "round " << round;
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(engine->snapshot()->generation(), 1u);
}

// A GroupProblem built from a snapshot stays valid after newer generations
// publish (the problem shares ownership of the snapshot it aliases).
TEST_F(SnapshotTest, ProblemOutlivesRetiredGeneration) {
  auto engine = MakeEngine();
  const std::vector<UserId> group = {4, 17, 29};
  QuerySpec spec;
  spec.k = 5;
  spec.num_candidate_items = 400;

  auto pinned = engine->snapshot();
  auto problem =
      engine->recommender().BuildProblem(pinned, group, spec);
  ASSERT_TRUE(problem.ok());
  const double score_before = problem.value().ExactScore(0);

  // Retire the generation; drop our own pin. The problem must keep the
  // snapshot (index rows + cached period lists) alive on its own.
  ASSERT_TRUE(engine->ApplyUpdates(RandomEvents(16, 99)).ok());
  pinned.reset();

  EXPECT_EQ(problem.value().ExactScore(0), score_before);
  std::vector<double> affinities = problem.value().ExactPairAffinities();
  EXPECT_EQ(affinities.size(), NumUserPairs(group.size()));
}

// Tombstone cache: the first assembly for a (group, pool) builds the
// group-rated bitmap, repeats within the same generation hit (bit-identical
// recs and access counts), a different pool prefix misses again, and a
// rating update starts a FRESH cache whose bitmaps see the new delta log.
TEST_F(SnapshotTest, TombstoneCacheHitsRepeatsAndResetsPerGeneration) {
  auto engine = MakeEngine();
  const auto snap = engine->snapshot();

  Query query;
  query.group = {4, 17, 29};
  query.spec.k = 5;
  query.spec.num_candidate_items = 400;

  EXPECT_EQ(snap->tombstone_cache_hits(), 0u);
  EXPECT_EQ(snap->tombstone_cache_misses(), 0u);

  const auto first = engine->Recommend(query, snap);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(snap->tombstone_cache_misses(), 1u);
  EXPECT_EQ(snap->tombstone_cache_hits(), 0u);
  EXPECT_EQ(snap->tombstone_cache_size(), 1u);

  // Identical repeat: the bitmap is served from the memo and nothing about
  // the answer changes — items, scores AND access counts.
  const auto repeat = engine->Recommend(query, snap);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(snap->tombstone_cache_misses(), 1u);
  EXPECT_EQ(snap->tombstone_cache_hits(), 1u);
  EXPECT_EQ(repeat.value().items, first.value().items);
  EXPECT_EQ(repeat.value().scores, first.value().scores);
  EXPECT_EQ(repeat.value().raw.accesses.sequential,
            first.value().raw.accesses.sequential);
  EXPECT_EQ(repeat.value().raw.accesses.random,
            first.value().raw.accesses.random);

  // A different pool prefix is a different bitmap (keyed by (group, pool)).
  Query narrower = query;
  narrower.spec.num_candidate_items = 100;
  ASSERT_TRUE(engine->Recommend(narrower, snap).ok());
  EXPECT_EQ(snap->tombstone_cache_misses(), 2u);
  EXPECT_EQ(snap->tombstone_cache_size(), 2u);
  EXPECT_GT(snap->TombstoneCacheMemoryBytes(), 0u);

  // Rate the group's current top pick: the next generation's FRESH cache
  // must tombstone it (a carried-over bitmap would keep recommending it).
  ASSERT_FALSE(first.value().items.empty());
  const ItemId top = first.value().items[0];
  RatingEvent e;
  e.user = 4;
  e.item = top;
  e.rating = 5.0;
  e.timestamp = 2'000'000'000;
  ASSERT_TRUE(engine->ApplyUpdates({&e, 1}).ok());
  const auto next = engine->snapshot();
  EXPECT_EQ(next->tombstone_cache_size(), 0u) << "fresh per generation";
  EXPECT_EQ(next->tombstone_cache_misses(), 0u);
  const auto after = engine->Recommend(query, next);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(next->tombstone_cache_misses(), 1u);
  for (const ItemId item : after.value().items) {
    EXPECT_NE(item, top) << "newly rated item must be excluded";
  }
}

// The tombstone cache is bounded: a cap of 1 evicts the older group's
// bitmap, the eviction counter records it, and the evicted group still
// answers identically when it misses back in.
TEST_F(SnapshotTest, TombstoneCacheEvictsLeastRecentlyUsedPastCap) {
  RecommenderOptions options;
  options.max_candidate_items = 400;
  options.tombstone_cache_max_entries = 1;
  EngineOptions eopts;
  eopts.num_threads = 2;
  auto engine = std::make_unique<Engine>(*universe_, *study_, options, eopts);
  const auto snap = engine->snapshot();

  Query a;
  a.group = {4, 17, 29};
  a.spec.k = 5;
  a.spec.num_candidate_items = 400;
  Query b = a;
  b.group = {3, 11};

  const auto a1 = engine->Recommend(a, snap);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(engine->Recommend(b, snap).ok());  // evicts A's bitmap
  EXPECT_EQ(snap->tombstone_cache_size(), 1u);
  EXPECT_EQ(snap->tombstone_cache_evictions(), 1u);

  const auto a2 = engine->Recommend(a, snap);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(snap->tombstone_cache_misses(), 3u);
  EXPECT_EQ(snap->tombstone_cache_evictions(), 2u);
  EXPECT_EQ(a2.value().items, a1.value().items);
  EXPECT_EQ(a2.value().scores, a1.value().scores);
}

}  // namespace
}  // namespace greca
