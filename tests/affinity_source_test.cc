// Tests for the pluggable AffinitySource layer: the study-backed source must
// reproduce the raw tables and the legacy group normalization exactly, the
// default CumulativeDrift must match the incremental index, and the
// decay-weighted decorator must degenerate to its base at decay = 1.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "affinity/affinity_source.h"
#include "affinity/dynamic_affinity.h"
#include "affinity/periodic_affinity.h"
#include "affinity/static_affinity.h"

namespace greca {
namespace {

/// 4 users, 3 periods of page likes with shifting overlaps, plus a static
/// common-friend table.
class AffinitySourceTest : public ::testing::Test {
 protected:
  AffinitySourceTest()
      : timeline_(Timeline::FixedWindows(0, 30, 10)),
        likes_(PageLikeLog::FromEvents(
            4, 6,
            {
                // Period 0 [0, 10): users 0/1 share categories 0 and 1.
                {0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}, {2, 2, 5},
                // Period 1 [10, 20): 0/1 share one category, 1/2 share one.
                {0, 0, 11}, {1, 0, 12}, {1, 3, 13}, {2, 3, 14},
                // Period 2 [20, 30): 2/3 share two categories.
                {2, 4, 21}, {2, 5, 22}, {3, 4, 23}, {3, 5, 24},
            })),
        periodic_(PeriodicAffinity::Compute(likes_, timeline_)),
        dynamic_(DynamicAffinityIndex::Build(periodic_)),
        static_(4) {
    static_.Set(0, 1, 6.0);
    static_.Set(0, 2, 3.0);
    static_.Set(1, 2, 1.0);
    static_.Set(2, 3, 2.0);
  }

  Timeline timeline_;
  PageLikeLog likes_;
  PeriodicAffinity periodic_;
  DynamicAffinityIndex dynamic_;
  PairTable static_;
};

TEST_F(AffinitySourceTest, StudySourceReproducesRawTables) {
  const StudyAffinitySource source(static_, periodic_, &dynamic_);
  EXPECT_EQ(source.num_users(), 4u);
  EXPECT_EQ(source.num_periods(), 3u);
  EXPECT_DOUBLE_EQ(source.Static(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(source.MaxStatic(), 6.0);
  EXPECT_DOUBLE_EQ(source.NormalizedStatic(0, 2), 0.5);
  for (PeriodId p = 0; p < 3; ++p) {
    for (UserId u = 0; u < 4; ++u) {
      for (UserId v = u + 1; v < 4; ++v) {
        EXPECT_DOUBLE_EQ(source.Periodic(u, v, p),
                         periodic_.Normalized(u, v, p));
      }
    }
    EXPECT_DOUBLE_EQ(source.PeriodAverage(p),
                     periodic_.PopulationAverageNormalized(p));
  }
}

TEST_F(AffinitySourceTest, MaterializedStaticListMatchesGroupNormalization) {
  const StudyAffinitySource source(static_, periodic_);
  const std::vector<UserId> group{0, 1, 2};
  const SortedList list = source.MaterializeStaticList(group);
  const std::vector<double> expected = NormalizeWithinGroup(static_, group);
  ASSERT_EQ(list.size(), expected.size());
  for (ListKey q = 0; q < expected.size(); ++q) {
    EXPECT_DOUBLE_EQ(list.ScoreOfKey(q), expected[q]) << "pair " << q;
  }
}

TEST_F(AffinitySourceTest, MaterializedPeriodListMatchesNormalizedTable) {
  const StudyAffinitySource source(static_, periodic_);
  const std::vector<UserId> group{1, 2, 3};
  for (PeriodId p = 0; p < 3; ++p) {
    const SortedList list = source.MaterializePeriodList(group, p);
    ASSERT_EQ(list.size(), 3u);
    ListKey q = 0;
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b, ++q) {
        EXPECT_DOUBLE_EQ(list.ScoreOfKey(q),
                         periodic_.Normalized(group[a], group[b], p));
      }
    }
  }
}

TEST_F(AffinitySourceTest, DefaultCumulativeDriftMatchesIncrementalIndex) {
  const StudyAffinitySource with_index(static_, periodic_, &dynamic_);
  const StudyAffinitySource without_index(static_, periodic_);
  for (PeriodId p = 0; p < 3; ++p) {
    for (UserId u = 0; u < 4; ++u) {
      for (UserId v = u + 1; v < 4; ++v) {
        const double reference = RecomputeCumulativeDrift(periodic_, u, v, p);
        EXPECT_NEAR(with_index.CumulativeDrift(u, v, p), reference, 1e-12);
        EXPECT_NEAR(without_index.CumulativeDrift(u, v, p), reference, 1e-12);
      }
    }
  }
}

TEST_F(AffinitySourceTest, DecayOneReproducesBaseSource) {
  auto base = std::make_shared<StudyAffinitySource>(static_, periodic_);
  const DecayWeightedAffinitySource decayed(base, 1.0);
  for (PeriodId p = 0; p < 3; ++p) {
    EXPECT_DOUBLE_EQ(decayed.PeriodAverage(p), base->PeriodAverage(p));
    EXPECT_DOUBLE_EQ(decayed.Periodic(0, 1, p), base->Periodic(0, 1, p));
  }
  EXPECT_DOUBLE_EQ(decayed.Static(0, 1), base->Static(0, 1));
  EXPECT_DOUBLE_EQ(decayed.MaxStatic(), base->MaxStatic());
}

TEST_F(AffinitySourceTest, DecayDownWeightsOldPeriodsOnly) {
  auto base = std::make_shared<StudyAffinitySource>(static_, periodic_);
  const double decay = 0.5;
  const DecayWeightedAffinitySource decayed(base, decay);
  // Newest period (p = 2) keeps full weight; older periods shrink
  // geometrically.
  for (PeriodId p = 0; p < 3; ++p) {
    const double weight = std::pow(decay, 2 - p);
    for (UserId u = 0; u < 4; ++u) {
      for (UserId v = u + 1; v < 4; ++v) {
        EXPECT_NEAR(decayed.Periodic(u, v, p),
                    weight * base->Periodic(u, v, p), 1e-12);
      }
    }
    EXPECT_NEAR(decayed.PeriodAverage(p), weight * base->PeriodAverage(p),
                1e-12);
  }
}

}  // namespace
}  // namespace greca
