// Tests for the friendship graph, its generators and the influence
// centralities behind kInfluence member weighting.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "dataset/social_graph.h"

namespace greca {
namespace {

TEST(SocialGraphTest, FromEdgesDedupesAndDropsSelfLoops) {
  const SocialGraph g = SocialGraph::FromEdges(
      4, {{0, 1}, {1, 0}, {2, 2}, {1, 2}, {0, 1}});
  EXPECT_EQ(g.num_users(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.AreFriends(0, 1));
  EXPECT_TRUE(g.AreFriends(2, 1));
  EXPECT_FALSE(g.AreFriends(0, 2));
  EXPECT_FALSE(g.AreFriends(2, 2));
  EXPECT_TRUE(g.FriendsOf(3).empty());
}

TEST(SocialGraphTest, AdjacencySorted) {
  const SocialGraph g =
      SocialGraph::FromEdges(5, {{3, 0}, {3, 4}, {3, 1}, {3, 2}});
  const auto friends = g.FriendsOf(3);
  ASSERT_EQ(friends.size(), 4u);
  for (std::size_t i = 1; i < friends.size(); ++i) {
    EXPECT_LT(friends[i - 1], friends[i]);
  }
}

TEST(SocialGraphTest, CommonFriendsCountsTriangles) {
  // 0 and 1 share friends {2, 3}; 0 and 4 share none.
  const SocialGraph g = SocialGraph::FromEdges(
      5, {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {0, 4}});
  EXPECT_EQ(g.CommonFriends(0, 1), 2u);
  EXPECT_EQ(g.CommonFriends(1, 0), 2u);  // symmetric
  EXPECT_EQ(g.CommonFriends(0, 4), 0u);
  EXPECT_EQ(g.CommonFriends(2, 3), 2u);  // both know 0 and 1
}

TEST(SocialGraphTest, AverageDegree) {
  const SocialGraph g = SocialGraph::FromEdges(4, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);  // 2*2/4
}

TEST(SeedAndInviteTest, MatchesStudyShape) {
  SeedAndInviteConfig config;  // 13 seeds, 72 users, 10..20 invites
  const SocialGraph g = GenerateSeedAndInvite(config);
  EXPECT_EQ(g.num_users(), 72u);
  // Every seed invited at least min_invites friends.
  for (UserId s = 0; s < config.num_seeds; ++s) {
    EXPECT_GE(g.FriendsOf(s).size(), config.min_invites);
  }
  // Invitees exist and the graph is reasonably connected.
  EXPECT_GT(g.num_edges(), 13u * 10u / 2u);
}

TEST(SeedAndInviteTest, DeterministicInSeed) {
  SeedAndInviteConfig config;
  const SocialGraph a = GenerateSeedAndInvite(config);
  const SocialGraph b = GenerateSeedAndInvite(config);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  config.seed = 999;
  const SocialGraph c = GenerateSeedAndInvite(config);
  EXPECT_NE(a.num_edges(), c.num_edges());
}

TEST(SeedAndInviteTest, ProducesCommonFriendSignal) {
  const SocialGraph g = GenerateSeedAndInvite({});
  std::size_t pairs_with_common = 0;
  for (UserId u = 0; u < 30; ++u) {
    for (UserId v = u + 1; v < 30; ++v) {
      pairs_with_common += g.CommonFriends(u, v) > 0;
    }
  }
  // Static affinity must be non-degenerate for the study to work.
  EXPECT_GT(pairs_with_common, 50u);
}

TEST(PreferentialAttachmentTest, DegreeSkewAndConnectivity) {
  const SocialGraph g = GeneratePreferentialAttachment(500, 3, 101);
  EXPECT_EQ(g.num_users(), 500u);
  // m edges per new node -> roughly 3*(n-2) edges.
  EXPECT_GT(g.num_edges(), 3u * 400u);
  std::size_t max_degree = 0;
  for (UserId u = 0; u < 500; ++u) {
    max_degree = std::max(max_degree, g.FriendsOf(u).size());
    EXPECT_GE(g.FriendsOf(u).size(), 1u);  // connected construction
  }
  // Hubs emerge under preferential attachment.
  EXPECT_GT(max_degree, 20u);
}

// Applies permutation perm (new id of old node u = perm[u]) to a graph's
// edge list.
SocialGraph Permuted(const SocialGraph& g, const std::vector<UserId>& perm) {
  std::vector<std::pair<UserId, UserId>> edges;
  for (UserId u = 0; u < g.num_users(); ++u) {
    for (const UserId v : g.FriendsOf(u)) {
      if (u < v) edges.emplace_back(perm[u], perm[v]);
    }
  }
  return SocialGraph::FromEdges(g.num_users(), std::move(edges));
}

TEST(CentralityTest, DegreeCentralityDeterministicAndNormalized) {
  // Star: hub 0 with leaves 1..4, plus isolated node 5.
  const SocialGraph g =
      SocialGraph::FromEdges(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const std::vector<double> w = DegreeCentrality(g);
  ASSERT_EQ(w.size(), 6u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);        // (1+4)/(1+4)
  EXPECT_DOUBLE_EQ(w[1], 2.0 / 5.0);  // (1+1)/(1+4)
  EXPECT_DOUBLE_EQ(w[5], 1.0 / 5.0);  // smoothed floor, never 0
  for (const double x : w) {
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  // Deterministic: two computations agree exactly.
  EXPECT_EQ(w, DegreeCentrality(g));
}

TEST(CentralityTest, PropagationCentralityRanksHubsAboveLeaves) {
  // Barbell-ish: a hub with many leaves vs a lightly connected pair.
  const SocialGraph g = SocialGraph::FromEdges(
      8, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {6, 7}, {5, 6}});
  const std::vector<double> w = PropagationCentrality(g);
  ASSERT_EQ(w.size(), 8u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);  // the hub normalizes to the max
  for (const double x : w) {
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  EXPECT_GT(w[0], w[1]);  // hub beats its leaves
  EXPECT_GT(w[5], w[7]);  // bridging to the hub beats the far pair
  // Leaf 5 (hub + node 6) beats leaf 1 (hub only): propagation sees the
  // second-order structure degree centrality cannot.
  EXPECT_GT(w[5], w[1]);
  EXPECT_DOUBLE_EQ(DegreeCentrality(g)[5], DegreeCentrality(g)[6]);
  EXPECT_GT(w[5], w[6]);
  // Deterministic: same graph, same weights, exactly.
  EXPECT_EQ(w, PropagationCentrality(g));
}

TEST(CentralityTest, StableUnderNodeIdPermutation) {
  const SocialGraph g = GenerateSeedAndInvite({});
  const std::size_t n = g.num_users();
  std::vector<UserId> perm(n);
  std::iota(perm.begin(), perm.end(), UserId{0});
  Rng rng(4242);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  const SocialGraph h = Permuted(g, perm);

  // Degree centrality is exactly equivariant (pure integer degrees).
  const std::vector<double> dg = DegreeCentrality(g);
  const std::vector<double> dh = DegreeCentrality(h);
  for (UserId u = 0; u < n; ++u) {
    EXPECT_DOUBLE_EQ(dg[u], dh[perm[u]]);
  }
  // Propagation accumulates neighbor sums in adjacency order, so relabeling
  // may reorder floating-point additions: equivariant to round-off.
  const std::vector<double> pg = PropagationCentrality(g);
  const std::vector<double> ph = PropagationCentrality(h);
  for (UserId u = 0; u < n; ++u) {
    EXPECT_NEAR(pg[u], ph[perm[u]], 1e-12);
  }
}

}  // namespace
}  // namespace greca
