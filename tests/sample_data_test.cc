// Parses the sample MovieLens-format files bundled under data/ml-sample/ —
// the same files the movielens_cli example uses — end to end from disk.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "dataset/movielens.h"

namespace greca {
namespace {

std::string SamplePath(const std::string& name) {
  return std::string(GRECA_SOURCE_DIR) + "/data/ml-sample/" + name;
}

TEST(SampleDataTest, RatingsFileParses) {
  MovieLensParseOptions options;
  options.strict = true;  // the bundled file must be fully well-formed
  const auto parsed = ParseRatingsFile(SamplePath("ratings.dat"), options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const MovieLensData& data = parsed.value();
  EXPECT_EQ(data.skipped_lines, 0u);
  EXPECT_EQ(data.ratings.num_users(), 80u);
  EXPECT_GE(data.ratings.num_ratings(), 80u * 25u);
  const DatasetStats stats = data.ratings.Stats();
  EXPECT_GE(stats.min_rating, 1.0);
  EXPECT_LE(stats.max_rating, 5.0);
  // Every user meets the study-style minimum used by the CLI example.
  for (UserId u = 0; u < data.ratings.num_users(); ++u) {
    EXPECT_GE(data.ratings.RatingsOfUser(u).size(), 25u) << "user " << u;
  }
}

TEST(SampleDataTest, MoviesFileParses) {
  std::ifstream in(SamplePath("movies.dat"));
  ASSERT_TRUE(in.good());
  const auto movies = ParseMovies(in, MovieLensFormat::kMl1m, true);
  ASSERT_TRUE(movies.ok()) << movies.status().ToString();
  EXPECT_EQ(movies.value().size(), 160u);
  for (const MovieInfo& m : movies.value()) {
    EXPECT_GT(m.external_id, 0);
    EXPECT_FALSE(m.title.empty());
    EXPECT_GE(m.genres.size(), 1u);
  }
}

TEST(SampleDataTest, RatingsReferenceKnownMovies) {
  const auto parsed = ParseRatingsFile(SamplePath("ratings.dat"), {});
  ASSERT_TRUE(parsed.ok());
  for (const auto external : parsed.value().item_external_ids) {
    EXPECT_GE(external, 1);
    EXPECT_LE(external, 160);
  }
}

}  // namespace
}  // namespace greca
