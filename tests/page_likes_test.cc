// Tests for the page-like log and its drifting-interest generator.
#include <gtest/gtest.h>

#include "dataset/page_likes.h"
#include "timeline/period.h"

namespace greca {
namespace {

PageLikeLog SmallLog() {
  std::vector<PageLikeEvent> events{
      {0, 5, 10}, {0, 7, 20}, {0, 5, 30},   // user 0
      {1, 5, 15}, {1, 9, 120},              // user 1
  };
  return PageLikeLog::FromEvents(3, 10, std::move(events));
}

TEST(PageLikeLogTest, EventsGroupedAndTimeSorted) {
  const PageLikeLog log = SmallLog();
  EXPECT_EQ(log.num_users(), 3u);
  EXPECT_EQ(log.num_categories(), 10u);
  EXPECT_EQ(log.num_events(), 5u);
  const auto u0 = log.LikesOfUser(0);
  ASSERT_EQ(u0.size(), 3u);
  EXPECT_LE(u0[0].timestamp, u0[1].timestamp);
  EXPECT_LE(u0[1].timestamp, u0[2].timestamp);
  EXPECT_TRUE(log.LikesOfUser(2).empty());
}

TEST(PageLikeLogTest, CategoriesInPeriodDedupes) {
  const PageLikeLog log = SmallLog();
  // Period [0, 100): user 0 liked categories {5, 7} (5 twice).
  const auto cats = log.CategoriesInPeriod(0, Period{0, 100});
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0], 5u);
  EXPECT_EQ(cats[1], 7u);
}

TEST(PageLikeLogTest, PeriodBoundariesClosedOpen) {
  const PageLikeLog log = SmallLog();
  EXPECT_EQ(log.EventCountInPeriod(1, Period{15, 120}), 1u);   // ts=15 in, 120 out
  EXPECT_EQ(log.EventCountInPeriod(1, Period{15, 121}), 2u);
  EXPECT_EQ(log.EventCountInPeriod(0, Period{50, 100}), 0u);
}

TEST(PageLikeGroundTruthTest, AffinityIsCosineOfMixtures) {
  PageLikeGroundTruth truth(2, 2, 1);
  truth.Weight(0, 0, 0) = 1.0;
  truth.Weight(0, 1, 0) = 0.0;
  truth.Weight(1, 0, 0) = 1.0;
  truth.Weight(1, 1, 0) = 0.0;
  EXPECT_NEAR(truth.TrueAffinity(0, 1, 0), 1.0, 1e-12);
  truth.Weight(1, 0, 0) = 0.0;
  truth.Weight(1, 1, 0) = 1.0;
  EXPECT_NEAR(truth.TrueAffinity(0, 1, 0), 0.0, 1e-12);
}

class PageLikeGeneratorTest : public ::testing::Test {
 protected:
  static constexpr Timestamp kYear = 365 * kSecondsPerDay;
  Timeline timeline_ =
      Timeline::WithGranularity(0, kYear, Granularity::kTwoMonth);
};

TEST_F(PageLikeGeneratorTest, DeterministicInSeed) {
  PageLikeGenConfig config;
  config.num_users = 20;
  const GeneratedPageLikes a = GeneratePageLikes(config, timeline_);
  const GeneratedPageLikes b = GeneratePageLikes(config, timeline_);
  EXPECT_EQ(a.log.num_events(), b.log.num_events());
}

TEST_F(PageLikeGeneratorTest, EventsRespectTimelineAndCategoryBounds) {
  PageLikeGenConfig config;
  config.num_users = 30;
  const GeneratedPageLikes out = GeneratePageLikes(config, timeline_);
  for (UserId u = 0; u < 30; ++u) {
    for (const auto& e : out.log.LikesOfUser(u)) {
      EXPECT_GE(e.timestamp, timeline_.start());
      EXPECT_LT(e.timestamp, timeline_.end());
      EXPECT_LT(e.category, config.num_categories);
    }
  }
  EXPECT_EQ(out.truth.num_periods(), timeline_.num_periods());
}

TEST_F(PageLikeGeneratorTest, MixturesNormalizedEveryPeriod) {
  PageLikeGenConfig config;
  config.num_users = 10;
  const GeneratedPageLikes out = GeneratePageLikes(config, timeline_);
  for (PeriodId p = 0; p < out.truth.num_periods(); ++p) {
    for (UserId u = 0; u < 10; ++u) {
      double total = 0.0;
      for (std::size_t c = 0; c < out.truth.num_communities(); ++c) {
        const double w = out.truth.Weight(u, c, p);
        EXPECT_GE(w, 0.0);
        total += w;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST_F(PageLikeGeneratorTest, AffinitiesDriftOverTime) {
  PageLikeGenConfig config;
  config.num_users = 40;
  config.drift_rate = 0.35;
  const GeneratedPageLikes out = GeneratePageLikes(config, timeline_);
  const auto last = static_cast<PeriodId>(out.truth.num_periods() - 1);
  double moved = 0.0;
  std::size_t pairs = 0;
  for (UserId u = 0; u < 40; ++u) {
    for (UserId v = u + 1; v < 40; ++v) {
      moved += std::abs(out.truth.TrueAffinity(u, v, last) -
                        out.truth.TrueAffinity(u, v, 0));
      ++pairs;
    }
  }
  // Interest drift must actually change pair affinities on average.
  EXPECT_GT(moved / static_cast<double>(pairs), 0.01);
}

TEST_F(PageLikeGeneratorTest, LikingIsInfrequent) {
  // Figure 4's premise: many periods hold no events for a user.
  PageLikeGenConfig config;
  config.num_users = 60;
  const GeneratedPageLikes out = GeneratePageLikes(config, timeline_);
  const Timeline weekly = Timeline::WithGranularity(
      0, kYear, Granularity::kWeek);
  std::size_t nonempty = 0, cells = 0;
  for (UserId u = 0; u < 60; ++u) {
    for (const Period& p : weekly.periods()) {
      nonempty += out.log.EventCountInPeriod(u, p) > 0;
      ++cells;
    }
  }
  const double share = static_cast<double>(nonempty) / static_cast<double>(cells);
  EXPECT_LT(share, 0.6);
  EXPECT_GT(share, 0.02);
}

}  // namespace
}  // namespace greca
