// Tests for the consensus functions: hand-computed examples, monotonicity
// (Lemma 1's premise) and interval soundness sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "consensus/consensus.h"

namespace greca {
namespace {

TEST(ConsensusSpecTest, PresetsAndNames) {
  EXPECT_EQ(ConsensusSpec::AveragePreference().Name(), "AP");
  EXPECT_EQ(ConsensusSpec::LeastMisery().Name(), "MO");
  EXPECT_EQ(ConsensusSpec::PairwiseDisagreement(0.8).Name(), "PD(w1=0.8)");
  EXPECT_EQ(ConsensusSpec::VarianceDisagreement(0.2).Name(), "VD(w1=0.2)");
  const ConsensusSpec pd = ConsensusSpec::PairwiseDisagreement(0.2);
  EXPECT_DOUBLE_EQ(pd.w1 + pd.w2, 1.0);
}

TEST(GroupPreferenceTest, AverageAndLeastMisery) {
  const std::vector<double> prefs{0.2, 0.8, 0.5};
  EXPECT_NEAR(GroupPreferenceScore(GroupAggregator::kAverage, prefs), 0.5,
              1e-12);
  EXPECT_DOUBLE_EQ(GroupPreferenceScore(GroupAggregator::kLeastMisery, prefs),
                   0.2);
}

TEST(DisagreementTest, PairwiseHandExample) {
  // Pairs: |0.2-0.8|=0.6, |0.2-0.5|=0.3, |0.8-0.5|=0.3; mean = 0.4.
  const std::vector<double> prefs{0.2, 0.8, 0.5};
  EXPECT_NEAR(DisagreementScore(DisagreementKind::kPairwise, prefs), 0.4,
              1e-12);
}

TEST(DisagreementTest, VarianceHandExample) {
  const std::vector<double> prefs{0.2, 0.8, 0.5};
  // mean = 0.5; var = (0.09 + 0.09 + 0) / 3 = 0.06.
  EXPECT_NEAR(DisagreementScore(DisagreementKind::kVariance, prefs), 0.06,
              1e-12);
}

TEST(DisagreementTest, NoneAndSingletonAreZero) {
  const std::vector<double> one{0.7};
  EXPECT_DOUBLE_EQ(DisagreementScore(DisagreementKind::kPairwise, one), 0.0);
  EXPECT_DOUBLE_EQ(DisagreementScore(DisagreementKind::kNone,
                                     std::vector<double>{0.1, 0.9}),
                   0.0);
}

TEST(ConsensusScoreTest, WeightsCombineGprefAndAgreement) {
  const std::vector<double> prefs{0.2, 0.8, 0.5};
  const ConsensusSpec pd = ConsensusSpec::PairwiseDisagreement(0.8);
  // 0.8*0.5 + 0.2*(1-0.4) = 0.4 + 0.12 = 0.52.
  EXPECT_NEAR(ConsensusScore(pd, prefs), 0.52, 1e-12);
  // Disagreement-free specs: F = w1*gpref + w2.
  EXPECT_NEAR(ConsensusScore(ConsensusSpec::AveragePreference(), prefs), 0.5,
              1e-12);
  EXPECT_NEAR(ConsensusScore(ConsensusSpec::LeastMisery(), prefs), 0.2,
              1e-12);
}

TEST(ConsensusScoreTest, UnanimousAgreementScoresHigherUnderPd) {
  const ConsensusSpec pd = ConsensusSpec::PairwiseDisagreement(0.5);
  // Same average preference; one group agrees, the other does not.
  EXPECT_GT(ConsensusScore(pd, std::vector<double>{0.5, 0.5, 0.5}),
            ConsensusScore(pd, std::vector<double>{0.1, 0.9, 0.5}));
}

/// Monotonicity (Lemma 1): raising any single member preference never lowers
/// the consensus score for AP/MO; for PD it holds in the paper's transformed
/// aggregate sense — we check AP/MO strictly, PD with gpref-dominant weights.
TEST(ConsensusMonotonicityTest, ApAndMoAreMonotone) {
  Rng rng(71);
  for (const auto spec :
       {ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery()}) {
    for (int trial = 0; trial < 300; ++trial) {
      std::vector<double> prefs(4);
      for (auto& p : prefs) p = rng.NextDouble();
      const double base = ConsensusScore(spec, prefs);
      const std::size_t j = rng.NextBounded(prefs.size());
      prefs[j] = std::min(1.0, prefs[j] + rng.NextDouble(0.0, 0.3));
      EXPECT_GE(ConsensusScore(spec, prefs), base - 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Interval propagation.
// ---------------------------------------------------------------------------

void ExpectIntervalNear(const Interval& actual, const Interval& expected) {
  EXPECT_NEAR(actual.lb, expected.lb, 1e-12);
  EXPECT_NEAR(actual.ub, expected.ub, 1e-12);
}

TEST(IntervalTest, BasicOps) {
  const Interval a{0.2, 0.5};
  const Interval b{0.1, 0.3};
  ExpectIntervalNear(a + b, Interval(0.3, 0.8));
  ExpectIntervalNear(Min(a, b), Interval(0.1, 0.3));
  ExpectIntervalNear(2.0 * b, Interval(0.2, 0.6));
  EXPECT_TRUE(Interval::Exact(0.4).IsExact());
  EXPECT_TRUE(b.CertainlyLeq(Interval{0.3, 0.9}));
  EXPECT_FALSE(a.CertainlyLeq(b));
}

TEST(IntervalTest, AbsDifference) {
  // Overlapping intervals can have zero difference.
  ExpectIntervalNear(AbsDifference({0.2, 0.5}, {0.4, 0.6}),
                     Interval(0.0, 0.4));
  // Disjoint intervals have the gap as the lower bound.
  ExpectIntervalNear(AbsDifference({0.0, 0.1}, {0.5, 0.7}),
                     Interval(0.4, 0.7));
  // Symmetric.
  ExpectIntervalNear(AbsDifference({0.5, 0.7}, {0.0, 0.1}),
                     Interval(0.4, 0.7));
}

struct IntervalCase {
  ConsensusSpec spec;
  const char* name;
};

class ConsensusIntervalTest : public ::testing::TestWithParam<IntervalCase> {};

TEST_P(ConsensusIntervalTest, IntervalEnclosesEveryRealization) {
  Rng rng(73);
  const ConsensusSpec& spec = GetParam().spec;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t g = 2 + rng.NextBounded(5);
    std::vector<Interval> ivs(g);
    std::vector<double> exact(g);
    for (std::size_t u = 0; u < g; ++u) {
      ivs[u].lb = rng.NextDouble(0.0, 0.6);
      ivs[u].ub = ivs[u].lb + rng.NextDouble(0.0, 0.4);
      exact[u] = rng.NextDouble(ivs[u].lb, ivs[u].ub);
    }
    const Interval out = ConsensusInterval(spec, ivs);
    const double score = ConsensusScore(spec, exact);
    EXPECT_LE(out.lb, score + 1e-12) << GetParam().name;
    EXPECT_GE(out.ub, score - 1e-12) << GetParam().name;
  }
}

TEST_P(ConsensusIntervalTest, ExactInputsGiveTightIntervalForNonVariance) {
  const ConsensusSpec& spec = GetParam().spec;
  if (spec.disagreement == DisagreementKind::kVariance) {
    GTEST_SKIP() << "variance upper bound is intentionally loose";
  }
  const std::vector<double> exact{0.3, 0.9, 0.6};
  std::vector<Interval> ivs;
  for (const double v : exact) ivs.push_back(Interval::Exact(v));
  const Interval out = ConsensusInterval(spec, ivs);
  const double score = ConsensusScore(spec, exact);
  EXPECT_NEAR(out.lb, score, 1e-12);
  EXPECT_NEAR(out.ub, score, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Specs, ConsensusIntervalTest,
    ::testing::Values(
        IntervalCase{ConsensusSpec::AveragePreference(), "AP"},
        IntervalCase{ConsensusSpec::LeastMisery(), "MO"},
        IntervalCase{ConsensusSpec::PairwiseDisagreement(0.8), "PD_V1"},
        IntervalCase{ConsensusSpec::PairwiseDisagreement(0.2), "PD_V2"},
        IntervalCase{ConsensusSpec::VarianceDisagreement(0.8), "VD"}),
    [](const ::testing::TestParamInfo<IntervalCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace greca
