// Tests for the §2.2 preference model shared by the scorer and GRECA.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "preference/preference_model.h"

namespace greca {
namespace {

TEST(PreferenceModelTest, SingletonGroupHasNoRelativeTerm) {
  const std::vector<double> apref{0.8};
  const std::vector<double> aff{};
  EXPECT_DOUBLE_EQ(RelativePreference(apref, aff, 0), 0.0);
  EXPECT_DOUBLE_EQ(MemberPreference(apref, aff, 0), 0.4);
}

TEST(PreferenceModelTest, PairHandExample) {
  const std::vector<double> apref{0.8, 0.4};
  const std::vector<double> aff{0.5};
  EXPECT_NEAR(RelativePreference(apref, aff, 0), 0.5 * 0.4, 1e-12);
  EXPECT_NEAR(RelativePreference(apref, aff, 1), 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(MemberPreference(apref, aff, 0), (0.8 + 0.2) / 2.0, 1e-12);
}

TEST(PreferenceModelTest, TrioMatchesPaperFormula) {
  // pref(u) = (apref_u + Σ aff(u,v)·apref_v / 2) / 2, pairs (01)(02)(12).
  const std::vector<double> apref{1.0, 0.5, 0.0};
  const std::vector<double> aff{0.6, 0.2, 0.4};
  std::vector<double> prefs(3);
  AllMemberPreferences(apref, aff, prefs);
  EXPECT_NEAR(prefs[0], (1.0 + (0.6 * 0.5 + 0.2 * 0.0) / 2.0) / 2.0, 1e-12);
  EXPECT_NEAR(prefs[1], (0.5 + (0.6 * 1.0 + 0.4 * 0.0) / 2.0) / 2.0, 1e-12);
  EXPECT_NEAR(prefs[2], (0.0 + (0.2 * 1.0 + 0.4 * 0.5) / 2.0) / 2.0, 1e-12);
}

TEST(PreferenceModelTest, ZeroAffinityReducesToHalfApref) {
  const std::vector<double> apref{0.9, 0.3, 0.6};
  const std::vector<double> aff{0.0, 0.0, 0.0};
  std::vector<double> prefs(3);
  AllMemberPreferences(apref, aff, prefs);
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_NEAR(prefs[u], apref[u] / 2.0, 1e-12);
  }
}

TEST(PreferenceModelTest, HigherAffinityToLikedItemRaisesPreference) {
  // Paper's core premise: if companions like i and affinity rises, the
  // member's relative preference for i rises too.
  const std::vector<double> apref{0.2, 0.9};
  const std::vector<double> low{0.1};
  const std::vector<double> high{0.9};
  EXPECT_GT(MemberPreference(apref, high, 0), MemberPreference(apref, low, 0));
}

TEST(PreferenceModelTest, OutputStaysInUnitInterval) {
  Rng rng(111);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t g = 2 + rng.NextBounded(7);
    std::vector<double> apref(g), prefs(g);
    std::vector<double> aff(NumUserPairs(g));
    for (auto& a : apref) a = rng.NextDouble();
    for (auto& a : aff) a = rng.NextDouble();
    AllMemberPreferences(apref, aff, prefs);
    for (const double p : prefs) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(PreferenceModelTest, DenseWeightsBitIdenticalToPacked) {
  // The exhaustive scorer expands the packed pair affinities once and scores
  // every candidate through the dense mat-vec; the two forms must agree
  // bit-for-bit (EXPECT_EQ, not NEAR) or banded/flat equivalence breaks.
  Rng rng(117);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t g = 1 + rng.NextBounded(8);
    std::vector<double> apref(g), packed_out(g), dense_out(g);
    std::vector<double> aff(NumUserPairs(g));
    for (auto& a : apref) a = rng.NextDouble();
    for (auto& a : aff) a = rng.NextDouble();
    // Exercise exact zeros too — the zero diagonal must stay exact.
    if (trial % 5 == 0) {
      apref[rng.NextBounded(g)] = 0.0;
      if (!aff.empty()) aff[rng.NextBounded(aff.size())] = 0.0;
    }
    std::vector<double> w(g * g);
    ExpandPairWeights(aff, g, w);
    AllMemberPreferences(apref, aff, packed_out);
    AllMemberPreferencesDense(apref, w, dense_out);
    for (std::size_t u = 0; u < g; ++u) {
      EXPECT_EQ(packed_out[u], dense_out[u]) << "g=" << g << " u=" << u;
    }
  }
}

TEST(PreferenceModelTest, IntervalEnclosesExactRealizations) {
  Rng rng(113);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t g = 2 + rng.NextBounded(5);
    std::vector<Interval> apref_iv(g), out_iv(g);
    std::vector<Interval> aff_iv(NumUserPairs(g));
    std::vector<double> apref(g), aff(aff_iv.size()), prefs(g);
    for (std::size_t u = 0; u < g; ++u) {
      apref_iv[u].lb = rng.NextDouble(0.0, 0.6);
      apref_iv[u].ub = apref_iv[u].lb + rng.NextDouble(0.0, 0.4);
      apref[u] = rng.NextDouble(apref_iv[u].lb, apref_iv[u].ub);
    }
    for (std::size_t q = 0; q < aff_iv.size(); ++q) {
      aff_iv[q].lb = rng.NextDouble(0.0, 0.6);
      aff_iv[q].ub = aff_iv[q].lb + rng.NextDouble(0.0, 0.4);
      aff[q] = rng.NextDouble(aff_iv[q].lb, aff_iv[q].ub);
    }
    AllMemberPreferences(apref, aff, prefs);
    AllMemberPreferenceIntervals(apref_iv, aff_iv, out_iv);
    for (std::size_t u = 0; u < g; ++u) {
      EXPECT_LE(out_iv[u].lb, prefs[u] + 1e-12);
      EXPECT_GE(out_iv[u].ub, prefs[u] - 1e-12);
    }
  }
}

}  // namespace
}  // namespace greca
