// Tests for the Facebook user-study twin: recruitment shape, rating
// constraints, movie sets and ground-truth plumbing (§4.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dataset/facebook_study.h"

namespace greca {
namespace {

class FacebookStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 400;
    uc.num_items = 500;
    uc.target_ratings = 40'000;
    uc.seed = 9;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.popular_set_size = 50;
    sc.diversity_set_size = 25;
    sc.diversity_pool = 200;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* FacebookStudyTest::universe_ = nullptr;
FacebookStudy* FacebookStudyTest::study_ = nullptr;

TEST_F(FacebookStudyTest, SeventyTwoParticipants) {
  EXPECT_EQ(study_->num_participants(), 72u);
  EXPECT_EQ(study_->graph.num_users(), 72u);
  EXPECT_EQ(study_->likes.num_users(), 72u);
  EXPECT_EQ(study_->likes.num_categories(), 197u);
}

TEST_F(FacebookStudyTest, OneYearOfTwoMonthPeriods) {
  EXPECT_EQ(study_->periods.num_periods(), 6u);
  EXPECT_EQ(study_->periods.start(), 0);
  EXPECT_EQ(study_->like_truth.num_periods(), 6u);
}

TEST_F(FacebookStudyTest, EveryParticipantRatedAtLeastThirty) {
  for (UserId u = 0; u < study_->num_participants(); ++u) {
    EXPECT_GE(study_->study_ratings.RatingsOfUser(u).size(), 30u)
        << "participant " << u;
  }
}

TEST_F(FacebookStudyTest, RatingsComeFromAssignedMovieSet) {
  const std::set<ItemId> similar(study_->similar_set.begin(),
                                 study_->similar_set.end());
  const std::set<ItemId> dissimilar(study_->dissimilar_set.begin(),
                                    study_->dissimilar_set.end());
  for (UserId u = 0; u < study_->num_participants(); ++u) {
    const auto& set = study_->rated_dissimilar[u] ? dissimilar : similar;
    for (const auto& e : study_->study_ratings.RatingsOfUser(u)) {
      EXPECT_TRUE(set.contains(e.item))
          << "participant " << u << " rated off-set item " << e.item;
    }
  }
}

TEST_F(FacebookStudyTest, MovieSetShapes) {
  EXPECT_EQ(study_->similar_set.size(), 50u);
  EXPECT_EQ(study_->dissimilar_set.size(), 50u);
  // Dissimilar = 25 popular + 25 high-variance, all distinct.
  const std::set<ItemId> distinct(study_->dissimilar_set.begin(),
                                  study_->dissimilar_set.end());
  EXPECT_EQ(distinct.size(), 50u);
  // Its first 25 entries are the top popular prefix.
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(study_->dissimilar_set[i], study_->similar_set[i]);
  }
}

TEST_F(FacebookStudyTest, HalfRatedEachSet) {
  std::size_t dissimilar = 0;
  for (UserId u = 0; u < study_->num_participants(); ++u) {
    dissimilar += study_->rated_dissimilar[u];
  }
  EXPECT_EQ(dissimilar, 36u);
}

TEST_F(FacebookStudyTest, ParticipantsMapToDistinctUniverseUsers) {
  std::set<UserId> distinct(study_->universe_user.begin(),
                            study_->universe_user.end());
  EXPECT_EQ(distinct.size(), study_->num_participants());
  for (const UserId uu : study_->universe_user) {
    EXPECT_LT(uu, universe_->dataset.num_users());
  }
}

TEST_F(FacebookStudyTest, StarsReflectLatentTastes) {
  // Observed study stars should sit near the mapped universe user's true
  // preference (generation adds bounded noise then rounds).
  double close = 0.0, total = 0.0;
  for (UserId u = 0; u < study_->num_participants(); ++u) {
    for (const auto& e : study_->study_ratings.RatingsOfUser(u)) {
      const double tp = universe_->truth.TruePreference(
          study_->universe_user[u], e.item);
      close += std::abs(tp - e.rating) <= 1.5;
      total += 1.0;
    }
  }
  EXPECT_GT(close / total, 0.85);
}

TEST_F(FacebookStudyTest, TotalRatingsNearPaperScale) {
  // The paper collected 1 981 ratings from 72 users; ours lands in the same
  // regime (72 × [30, 40]).
  const std::size_t total = study_->study_ratings.num_ratings();
  EXPECT_GE(total, 72u * 30u);
  EXPECT_LE(total, 72u * 41u);
}

TEST_F(FacebookStudyTest, DeterministicInSeed) {
  FacebookStudyConfig sc;
  const FacebookStudy again = GenerateFacebookStudy(sc, *universe_);
  EXPECT_EQ(again.study_ratings.num_ratings(),
            study_->study_ratings.num_ratings());
  EXPECT_EQ(again.graph.num_edges(), study_->graph.num_edges());
  EXPECT_EQ(again.likes.num_events(), study_->likes.num_events());
}

}  // namespace
}  // namespace greca
