// Unit tests for src/common: RNG, distributions, statistics, strings,
// status, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/distributions.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace greca {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1'000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) seen.insert(rng.NextInt(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, GaussianMomentsReasonable) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(42);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child_a.NextU64() == child_b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(ZipfTest, PmfSumsToOneAndDecreases) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < 100; ++r) {
    total += zipf.Pmf(r);
    if (r > 0) {
      EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1) + 1e-12);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadIsHeavy) {
  const ZipfSampler zipf(1'000, 1.0);
  Rng rng(5);
  std::size_t head = 0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) head += (zipf.Sample(rng) < 10);
  // With s=1 the top-10 of 1000 ranks carry ~39% of the mass.
  EXPECT_GT(static_cast<double>(head) / kSamples, 0.3);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  const ZipfSampler zipf(50, 0.0);
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 1.0 / 50.0, 1e-9);
  }
}

TEST(LogNormalTest, RespectsClamp) {
  LogNormalSampler sampler(2.0, 1.5, 5.0, 50.0);
  Rng rng(3);
  for (int i = 0; i < 5'000; ++i) {
    const double x = sampler.Sample(rng);
    EXPECT_GE(x, 5.0);
    EXPECT_LE(x, 50.0);
  }
}

TEST(SampleDistinctTest, ProducesSortedDistinct) {
  Rng rng(17);
  const auto picks = SampleDistinct(rng, 100, 30);
  ASSERT_EQ(picks.size(), 30u);
  for (std::size_t i = 1; i < picks.size(); ++i) {
    EXPECT_LT(picks[i - 1], picks[i]);
  }
  EXPECT_LT(picks.back(), 100u);
}

TEST(SampleDistinctTest, FullRangeWhenKEqualsN) {
  Rng rng(19);
  const auto picks = SampleDistinct(rng, 10, 10);
  ASSERT_EQ(picks.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(picks[i], i);
}

TEST(OnlineStatsTest, MatchesBatchFormulas) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats acc;
  for (const double x : xs) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), Mean(xs));
  EXPECT_NEAR(acc.variance(), Variance(xs), 1e-12);
  EXPECT_EQ(acc.min(), 1.0);
  EXPECT_EQ(acc.max(), 16.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  Rng rng(23);
  OnlineStats all, left, right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.NextGaussian();
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25.0);
}

TEST(StatsTest, PercentileEdgeCases) {
  // Empty span: defined as 0, never an out-of-bounds read.
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  // n = 1: every percentile is the single sample.
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(Percentile(one, 0), 7.5);
  EXPECT_DOUBLE_EQ(Percentile(one, 99), 7.5);
  EXPECT_DOUBLE_EQ(Percentile(one, 100), 7.5);
  // Out-of-range p clamps to the extremes instead of extrapolating.
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, -5), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 250), 40.0);
  // Input order must not matter (the helper sorts a copy).
  const std::vector<double> shuffled{30, 10, 40, 20};
  EXPECT_DOUBLE_EQ(Percentile(shuffled, 50), 25.0);
}

TEST(StatsTest, PercentileSmallSampleP99) {
  // The small-n p99 shape bench_online's decile buckets rely on: with few
  // samples the p99 interpolates inside the top gap, never past the max.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const double p99 = Percentile(xs, 99);
  EXPECT_DOUBLE_EQ(p99, 2.0 + 0.98 * 1.0);  // pos = 0.99 * 2 = 1.98
  EXPECT_LE(p99, 3.0);
  const std::vector<double> two{5.0, 15.0};
  EXPECT_DOUBLE_EQ(Percentile(two, 99), 5.0 + 0.99 * 10.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 50), 10.0);
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  const auto parts = Split("a::::b", "::");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  const auto parts = Split("abc", ",");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  x \r\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("4.2").has_value());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("5").value(), 5.0);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(StatusTest, OkAndErrorsFormat) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status err = Status::ParseError("bad line");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad line");
}

TEST(ResultTest, ValueAndStatusPaths) {
  const Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  const Result<int> bad(Status::NotFound("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(UserPairTest, CanonicalizesOrder) {
  const UserPair p(5, 2);
  EXPECT_EQ(p.first, 2u);
  EXPECT_EQ(p.second, 5u);
  EXPECT_EQ(p, UserPair(2, 5));
  EXPECT_EQ(NumUserPairs(6), 15u);
  EXPECT_EQ(NumUserPairs(1), 0u);
}

TEST(TablePrinterTest, RendersAlignedTableAndCsv) {
  TablePrinter table("Demo");
  table.SetColumns({"name", "value"});
  table.AddRow({"alpha", TablePrinter::Cell(1.5, 2)});
  table.AddRow({"b", TablePrinter::Cell(std::size_t{42})});
  std::ostringstream box;
  table.Print(box);
  EXPECT_NE(box.str().find("== Demo =="), std::string::npos);
  EXPECT_NE(box.str().find("| alpha | 1.50  |"), std::string::npos);
  std::ostringstream csv;
  table.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.50\nb,42\n");
}

TEST(TablePrinterTest, CsvQuotesSpecialCells) {
  TablePrinter table("Q");
  table.SetColumns({"a"});
  table.AddRow({"x,y"});
  std::ostringstream csv;
  table.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "a\n\"x,y\"\n");
}

TEST(ThreadPoolTest, RunsEveryIndexWithStableWorkerIds) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  constexpr std::size_t kN = 1'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](std::size_t worker, std::size_t i) {
    EXPECT_LT(worker, pool.size());
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

// Regression: concurrent ParallelFor calls from different external threads
// used to clobber the shared dispatch state (job_, active_workers_) because
// mu_ is released while the dispatcher waits for its round — batches could
// deadlock or run the wrong lambda. Calls are now serialized internally;
// every index of every caller must run exactly once.
TEST(ThreadPoolTest, ConcurrentExternalCallersAreSerialized) {
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kN = 400;
  std::vector<std::atomic<int>> counts(kN);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        pool.ParallelFor(kN, [&](std::size_t, std::size_t i) {
          counts[i].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), static_cast<int>(kCallers * 3))
        << "index " << i;
  }
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
// A nested ParallelFor from a worker can never complete (the worker would
// have to finish the outer batch first); debug builds must fail fast
// instead of deadlocking.
TEST(ThreadPoolDeathTest, NestedParallelForAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.ParallelFor(4, [&](std::size_t, std::size_t) {
          pool.ParallelFor(2, [](std::size_t, std::size_t) {});
        });
      },
      "nested");
}
#endif

}  // namespace
}  // namespace greca
