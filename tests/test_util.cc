#include "test_util.h"

#include <algorithm>

#include "affinity/static_affinity.h"

namespace greca::testing {

namespace {

SortedList RandomList(Rng& rng, std::size_t keys) {
  std::vector<ListEntry> entries;
  entries.reserve(keys);
  for (ListKey k = 0; k < keys; ++k) {
    entries.push_back({k, rng.NextDouble()});
  }
  return SortedList::FromUnsorted(std::move(entries),
                                  static_cast<ListKey>(keys));
}

}  // namespace

GroupProblem MakeRandomProblem(Rng& rng, std::size_t g, std::size_t m,
                               std::size_t num_periods,
                               const ConsensusSpec& consensus,
                               const AffinityModelSpec& model) {
  std::vector<SortedList> pref_lists;
  for (std::size_t u = 0; u < g; ++u) pref_lists.push_back(RandomList(rng, m));
  const std::size_t pairs = NumUserPairs(g);
  SortedList static_list = RandomList(rng, pairs);
  std::vector<SortedList> period_lists;
  std::vector<double> averages;
  const std::size_t periods =
      (model.affinity_aware && model.time_aware) ? num_periods : 0;
  for (std::size_t t = 0; t < periods; ++t) {
    period_lists.push_back(RandomList(rng, pairs));
    averages.push_back(rng.NextDouble(0.0, 0.5));
  }
  std::vector<SortedList> agreement_lists;
  if (consensus.disagreement == DisagreementKind::kPairwise && g >= 2) {
    agreement_lists =
        BuildAgreementLists(pref_lists, m, consensus.disagreement_scale);
  }
  AffinityCombiner combiner(model, std::move(averages));
  return GroupProblem(m, std::move(pref_lists), std::move(static_list),
                      std::move(period_lists), std::move(combiner), consensus,
                      std::move(agreement_lists));
}

GroupProblem MakeRunningExampleProblem(const ConsensusSpec& consensus,
                                       const AffinityModelSpec& model) {
  // Table 1 absolute preferences (stars / 5). Items i1, i2, i3 -> keys 0,1,2.
  const auto list = [](std::initializer_list<double> stars) {
    std::vector<ListEntry> entries;
    ListKey key = 0;
    for (const double s : stars) entries.push_back({key++, s / 5.0});
    return SortedList::FromUnsorted(std::move(entries), 3);
  };
  std::vector<SortedList> pref_lists;
  pref_lists.push_back(list({5.0, 1.0, 1.0}));  // u1
  pref_lists.push_back(list({5.0, 1.0, 0.5}));  // u2
  pref_lists.push_back(list({2.0, 1.0, 2.0}));  // u3

  // Pairs: (u1,u2)=0, (u1,u3)=1, (u2,u3)=2 in local pair order.
  const auto pair_list = [](double p12, double p13, double p23) {
    std::vector<ListEntry> entries{{0, p12}, {1, p13}, {2, p23}};
    return SortedList::FromUnsorted(std::move(entries), 3);
  };
  SortedList static_list = pair_list(1.0, 0.2, 0.3);  // Table 2

  std::vector<SortedList> period_lists;
  std::vector<double> averages;
  if (model.affinity_aware && model.time_aware) {
    period_lists.push_back(pair_list(0.8, 0.1, 0.2));  // Table 3 (p1)
    period_lists.push_back(pair_list(0.7, 0.1, 0.1));  // Table 4 (p2)
    averages = {0.2, 0.15};  // population averages (not given in the paper)
  }
  std::vector<SortedList> agreement_lists;
  if (consensus.disagreement == DisagreementKind::kPairwise) {
    agreement_lists =
        BuildAgreementLists(pref_lists, 3, consensus.disagreement_scale);
  }
  AffinityCombiner combiner(model, std::move(averages));
  return GroupProblem(3, std::move(pref_lists), std::move(static_list),
                      std::move(period_lists), std::move(combiner), consensus,
                      std::move(agreement_lists));
}

std::vector<double> ExactScoresSorted(const GroupProblem& problem,
                                      const std::vector<ListEntry>& items) {
  std::vector<double> scores;
  scores.reserve(items.size());
  for (const ListEntry& e : items) scores.push_back(problem.ExactScore(e.id));
  std::sort(scores.begin(), scores.end(), std::greater<>());
  return scores;
}

}  // namespace greca::testing
