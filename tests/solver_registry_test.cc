// The pluggable-solver contract:
//  * the global registry serves the four built-ins and rejects bad
//    registrations (null, empty id, duplicates) without clobbering;
//  * enum aliases and explicit solver ids resolve to the same solver, and
//    unknown ids fail validation — on the builder, the monolithic engine and
//    the sharded engine alike;
//  * the registry-dispatched uniform-weight path is BIT-IDENTICAL (items,
//    scores, access counts, rounds) to the historical enum-switch — i.e. to
//    calling Greca/NaiveTopK/TaTopK directly on the same assembled problem —
//    on both engines and across live publishes on pinned snapshots;
//  * a custom registered solver runs end-to-end through QuerySpec::solver_id;
//  * influence weighting produces genuinely non-uniform weights from the
//    social graph and flows through every solver with no per-solver code.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/query_builder.h"
#include "core/greca.h"
#include "core/problem_assembly.h"
#include "shard/sharded_engine.h"
#include "solver/builtin_solvers.h"
#include "solver/solver_registry.h"
#include "solver/submodular_solver.h"
#include "topk/naive.h"
#include "topk/ta.h"

namespace greca {
namespace {

class SolverRegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticRatingsConfig uc;
    uc.num_users = 200;
    uc.num_items = 320;
    uc.target_ratings = 14'000;
    uc.seed = 31;
    universe_ = new SyntheticRatings(GenerateSyntheticRatings(uc));
    FacebookStudyConfig sc;
    sc.diversity_pool = 150;
    study_ = new FacebookStudy(GenerateFacebookStudy(sc, *universe_));
  }
  static void TearDownTestSuite() {
    delete study_;
    delete universe_;
    study_ = nullptr;
    universe_ = nullptr;
  }

  static RecommenderOptions Options() {
    RecommenderOptions options;
    options.max_candidate_items = 280;
    return options;
  }

  static std::vector<RatingEvent> SomeUpdates() {
    return {{3, 17, 4.5, 1'000}, {5, 40, 2.0, 1'001}, {3, 90, 3.0, 1'002}};
  }

  static SyntheticRatings* universe_;
  static FacebookStudy* study_;
};

SyntheticRatings* SolverRegistryTest::universe_ = nullptr;
FacebookStudy* SolverRegistryTest::study_ = nullptr;

void ExpectSameRecommendation(const Recommendation& a,
                              const Recommendation& b) {
  ASSERT_EQ(a.items.size(), b.items.size());
  EXPECT_EQ(a.items, b.items);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i], b.scores[i]) << "score " << i;
  }
  EXPECT_EQ(a.raw.accesses.sequential, b.raw.accesses.sequential);
  EXPECT_EQ(a.raw.accesses.random, b.raw.accesses.random);
  EXPECT_EQ(a.raw.total_entries, b.raw.total_entries);
  EXPECT_EQ(a.raw.rounds, b.raw.rounds);
  EXPECT_EQ(a.raw.early_terminated, b.raw.early_terminated);
}

TEST_F(SolverRegistryTest, BuiltinsRegistered) {
  SolverRegistry& registry = SolverRegistry::Global();
  for (const std::string_view id :
       {kGrecaSolverId, kNaiveSolverId, kTaSolverId, kSubmodularSolverId}) {
    const GroupSolver* solver = registry.Find(id);
    ASSERT_NE(solver, nullptr) << id;
    EXPECT_EQ(solver->id(), id);
  }
  EXPECT_EQ(registry.Find("no-such-solver"), nullptr);
  const std::vector<std::string> ids = registry.RegisteredIds();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (const std::string_view id :
       {kGrecaSolverId, kNaiveSolverId, kTaSolverId, kSubmodularSolverId}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), std::string(id)), ids.end());
  }
}

TEST_F(SolverRegistryTest, BadRegistrationsRejectedWithoutClobbering) {
  SolverRegistry& registry = SolverRegistry::Global();
  const GroupSolver* original = registry.Find(kNaiveSolverId);
  EXPECT_FALSE(registry.Register(nullptr).ok());
  EXPECT_FALSE(registry.Register(std::make_unique<NaiveSolver>()).ok());
  EXPECT_EQ(registry.Find(kNaiveSolverId), original);  // first wins

  class EmptyIdSolver final : public GroupSolver {
   public:
    std::string_view id() const override { return ""; }
    SolverResult Solve(GroupProblem&, const QuerySpec&,
                       QueryWorkspace&) const override {
      return {};
    }
  };
  EXPECT_FALSE(registry.Register(std::make_unique<EmptyIdSolver>()).ok());
}

TEST_F(SolverRegistryTest, ResolutionPrefersExplicitId) {
  QuerySpec spec;
  spec.algorithm = Algorithm::kTa;
  EXPECT_EQ(ResolveSolverId(spec), kTaSolverId);
  spec.solver_id = std::string(kSubmodularSolverId);
  EXPECT_EQ(ResolveSolverId(spec), kSubmodularSolverId);
  EXPECT_EQ(AlgorithmSolverId(Algorithm::kGreca), kGrecaSolverId);
  EXPECT_EQ(AlgorithmSolverId(Algorithm::kNaive), kNaiveSolverId);
  EXPECT_EQ(AlgorithmSolverId(Algorithm::kTa), kTaSolverId);
}

TEST_F(SolverRegistryTest, UnknownSolverIdFailsValidationEverywhere) {
  const GroupRecommender recommender(universe_->dataset, *study_, Options());
  QuerySpec spec;
  spec.num_candidate_items = 280;
  spec.solver_id = "definitely-not-registered";
  const std::vector<UserId> group{0, 1, 2};
  const Status direct = recommender.ValidateQuery(group, spec);
  EXPECT_EQ(direct.code(), StatusCode::kInvalidArgument);

  const Result<Query> built = QueryBuilder(recommender)
                                  .Members({0, 1, 2})
                                  .Using("definitely-not-registered")
                                  .CandidatePool(280)
                                  .Build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);

  ShardedEngineOptions sopts;
  sopts.num_shards = 3;
  sopts.max_candidate_items = 280;
  const ShardedEngine sharded(universe_->dataset, *study_, sopts);
  EXPECT_EQ(sharded.ValidateQuery(group, spec).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SolverRegistryTest, GrecaGroupCapEnforcedThroughSolverHook) {
  const GroupRecommender recommender(universe_->dataset, *study_, Options());
  std::vector<UserId> big(33);
  for (UserId u = 0; u < 33; ++u) big[u] = u;
  QuerySpec spec;  // defaults to kGreca
  spec.num_candidate_items = 280;
  const Status status = recommender.ValidateQuery(big, spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("32-member"), std::string::npos);
  // The same group passes for solvers without the cap.
  spec.solver_id = std::string(kNaiveSolverId);
  EXPECT_TRUE(recommender.ValidateQuery(big, spec).ok());
}

// The historical enum-switch body, applied to the same assembled problem the
// registry path solves — the pre-refactor reference.
Recommendation SolveViaSwitch(const GroupRecommender& recommender,
                              const std::shared_ptr<const Snapshot>& snap,
                              const std::vector<UserId>& group,
                              const QuerySpec& spec) {
  QueryWorkspace ws;
  std::vector<ItemId> candidates;
  Result<GroupProblem> problem =
      recommender.BuildProblem(snap, group, spec, &candidates, &ws);
  EXPECT_TRUE(problem.ok());
  Recommendation rec;
  switch (spec.algorithm) {
    case Algorithm::kGreca: {
      GrecaConfig config;
      config.k = spec.k;
      config.termination = spec.termination;
      rec.raw = Greca(problem.value(), config, &rec.greca_stats, &ws.greca);
      break;
    }
    case Algorithm::kNaive:
      rec.raw = NaiveTopK(problem.value(), spec.k);
      break;
    case Algorithm::kTa:
      rec.raw = TaTopK(problem.value(), spec.k);
      break;
  }
  for (const ListEntry& e : rec.raw.items) {
    rec.items.push_back(candidates[e.id]);
    rec.scores.push_back(e.score);
  }
  return rec;
}

TEST_F(SolverRegistryTest, RegistryPathBitIdenticalToSwitchAcrossPublishes) {
  GroupRecommender recommender(universe_->dataset, *study_, Options());
  const std::vector<UserId> group{1, 4, 9, 16};
  const ConsensusSpec consensuses[] = {ConsensusSpec::AveragePreference(),
                                       ConsensusSpec::PairwiseDisagreement()};
  const Algorithm algorithms[] = {Algorithm::kGreca, Algorithm::kNaive,
                                  Algorithm::kTa};
  // Pin the pre-update snapshot, publish, then check both generations: the
  // pinned one must still solve bit-identically after the publish.
  const std::shared_ptr<const Snapshot> before = recommender.snapshot();
  ASSERT_TRUE(recommender.ApplyRatingUpdates(SomeUpdates()).ok());
  const std::shared_ptr<const Snapshot> after = recommender.snapshot();
  ASSERT_NE(before->generation(), after->generation());

  for (const auto& snap : {before, after}) {
    for (const ConsensusSpec& consensus : consensuses) {
      for (const Algorithm algorithm : algorithms) {
        QuerySpec spec;
        spec.k = 8;
        spec.consensus = consensus;
        spec.algorithm = algorithm;
        spec.num_candidate_items = 280;
        const Recommendation reference =
            SolveViaSwitch(recommender, snap, group, spec);
        // Registry dispatch via the enum alias...
        const Result<Recommendation> via_enum =
            recommender.Recommend(snap, group, spec);
        ASSERT_TRUE(via_enum.ok());
        ExpectSameRecommendation(via_enum.value(), reference);
        // ...and via the explicit solver id: same bucket, same bits.
        QuerySpec by_id = spec;
        by_id.algorithm = Algorithm::kGreca;  // alias deliberately "wrong"
        by_id.solver_id = std::string(AlgorithmSolverId(algorithm));
        const Result<Recommendation> via_id =
            recommender.Recommend(snap, group, by_id);
        ASSERT_TRUE(via_id.ok());
        ExpectSameRecommendation(via_id.value(), reference);
      }
    }
  }
}

TEST_F(SolverRegistryTest, ShardedRegistryPathMatchesMonolithic) {
  GroupRecommender mono(universe_->dataset, *study_, Options());
  ShardedEngineOptions sopts;
  sopts.num_shards = 4;
  sopts.max_candidate_items = 280;
  ShardedEngine sharded(universe_->dataset, *study_, sopts);
  ASSERT_TRUE(mono.ApplyRatingUpdates(SomeUpdates()).ok());
  ASSERT_TRUE(sharded.ApplyUpdates(SomeUpdates()).ok());

  const std::vector<UserId> group{2, 7, 11};
  for (const std::string_view id : {kGrecaSolverId, kNaiveSolverId,
                                    kTaSolverId, kSubmodularSolverId}) {
    QuerySpec spec;
    spec.k = 6;
    spec.solver_id = std::string(id);
    spec.num_candidate_items = 280;
    const Result<Recommendation> m = mono.Recommend(group, spec);
    const Result<Recommendation> s = sharded.Recommend(group, spec);
    ASSERT_TRUE(m.ok()) << id;
    ASSERT_TRUE(s.ok()) << id;
    ExpectSameRecommendation(s.value(), m.value());
  }
}

TEST_F(SolverRegistryTest, CustomSolverRunsEndToEnd) {
  // A degenerate but well-formed solver: recommends the first live candidate
  // with a score of 1. Registered once per process (the registry is global).
  class FirstCandidateSolver final : public GroupSolver {
   public:
    std::string_view id() const override { return "test-first-candidate"; }
    SolverResult Solve(GroupProblem& problem, const QuerySpec&,
                       QueryWorkspace&) const override {
      SolverResult result;
      result.raw.total_entries = problem.TotalEntries();
      for (ListKey key = 0; key < problem.num_items(); ++key) {
        if (!problem.IsCandidate(key)) continue;
        result.raw.items.push_back({key, 1.0});
        break;
      }
      return result;
    }
  };
  (void)SolverRegistry::Global().Register(
      std::make_unique<FirstCandidateSolver>());
  ASSERT_NE(SolverRegistry::Global().Find("test-first-candidate"), nullptr);

  const GroupRecommender recommender(universe_->dataset, *study_, Options());
  const Result<Query> query = QueryBuilder(recommender)
                                  .Members({0, 3, 6})
                                  .TopK(4)
                                  .Using("test-first-candidate")
                                  .CandidatePool(280)
                                  .Build();
  ASSERT_TRUE(query.ok());
  const Result<Recommendation> rec =
      recommender.Recommend(query.value().group, query.value().spec);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().items.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.value().scores[0], 1.0);
}

TEST_F(SolverRegistryTest, InfluenceWeightingIsNonUniformAndFlowsEverywhere) {
  GroupRecommender mono(universe_->dataset, *study_, Options());
  ShardedEngineOptions sopts;
  sopts.num_shards = 3;
  sopts.max_candidate_items = 280;
  ShardedEngine sharded(universe_->dataset, *study_, sopts);

  // The study graph yields genuinely non-uniform influence weights.
  const std::vector<UserId> group{0, 5, 10, 20};
  std::vector<double> weights(group.size());
  mono.snapshot()->affinity().MaterializeMemberWeightsInto(group, weights);
  bool non_uniform = false;
  for (const double w : weights) {
    EXPECT_GT(w, 0.0);
    non_uniform = non_uniform || w != weights[0];
  }
  EXPECT_TRUE(non_uniform);

  for (const std::string_view id : {kGrecaSolverId, kNaiveSolverId,
                                    kTaSolverId, kSubmodularSolverId}) {
    QuerySpec spec;
    spec.k = 6;
    spec.solver_id = std::string(id);
    spec.weighting = MemberWeighting::kInfluence;
    spec.num_candidate_items = 280;
    const Result<Recommendation> weighted = mono.Recommend(group, spec);
    ASSERT_TRUE(weighted.ok()) << id;
    EXPECT_FALSE(weighted.value().items.empty()) << id;
    // Both engines agree under influence weighting, for every solver.
    const Result<Recommendation> sharded_weighted =
        sharded.Recommend(group, spec);
    ASSERT_TRUE(sharded_weighted.ok()) << id;
    ExpectSameRecommendation(sharded_weighted.value(), weighted.value());
  }

  // The weighting changes scoring: the exact solvers rank differently (or at
  // least score differently) somewhere in the top-k for this group.
  QuerySpec uniform;
  uniform.k = 6;
  uniform.solver_id = std::string(kNaiveSolverId);
  uniform.num_candidate_items = 280;
  QuerySpec influence = uniform;
  influence.weighting = MemberWeighting::kInfluence;
  const Recommendation u = mono.Recommend(group, uniform).value();
  const Recommendation w = mono.Recommend(group, influence).value();
  EXPECT_TRUE(u.items != w.items || u.scores != w.scores);
}

}  // namespace
}  // namespace greca
