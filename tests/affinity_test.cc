// Tests for the affinity subsystem: pair tables, periodic affinity and its
// closed-form population average, the incremental drift index, and both
// temporal models (including the Tables 2–4 running-example values).
#include <gtest/gtest.h>

#include <cmath>

#include "affinity/dynamic_affinity.h"
#include "affinity/periodic_affinity.h"
#include "affinity/static_affinity.h"
#include "affinity/temporal_model.h"
#include "common/rng.h"
#include "dataset/page_likes.h"
#include "dataset/social_graph.h"

namespace greca {
namespace {

TEST(PairTableTest, PackedIndexingIsSymmetricAndUnique) {
  PairTable table(5);
  EXPECT_EQ(table.num_pairs(), 10u);
  std::vector<bool> hit(10, false);
  for (UserId u = 0; u < 5; ++u) {
    for (UserId v = u + 1; v < 5; ++v) {
      const std::size_t idx = table.PairIndex(u, v);
      EXPECT_EQ(idx, table.PairIndex(v, u));
      ASSERT_LT(idx, 10u);
      EXPECT_FALSE(hit[idx]) << "collision at (" << u << "," << v << ")";
      hit[idx] = true;
    }
  }
}

TEST(PairTableTest, GetSetMaxMean) {
  PairTable table(3);
  table.Set(0, 1, 2.0);
  table.Set(2, 1, 4.0);
  EXPECT_DOUBLE_EQ(table.Get(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(table.Get(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(table.Get(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(table.Max(), 4.0);
  EXPECT_DOUBLE_EQ(table.MeanOverPairs(), 2.0);
}

TEST(StaticAffinityTest, CommonFriendCountsFromGraph) {
  const SocialGraph g = SocialGraph::FromEdges(
      5, {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {0, 4}});
  const PairTable table = ComputeCommonFriendCounts(g);
  EXPECT_DOUBLE_EQ(table.Get(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(table.Get(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(table.Get(2, 3), 2.0);
}

TEST(StaticAffinityTest, GroupNormalizationByMaxPair) {
  PairTable table(4);
  table.Set(0, 1, 8.0);
  table.Set(0, 2, 4.0);
  table.Set(1, 2, 2.0);
  const std::vector<UserId> group{0, 1, 2};
  const auto values = NormalizeWithinGroup(table, group);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[LocalPairIndex(0, 1, 3)], 1.0);
  EXPECT_DOUBLE_EQ(values[LocalPairIndex(0, 2, 3)], 0.5);
  EXPECT_DOUBLE_EQ(values[LocalPairIndex(1, 2, 3)], 0.25);
}

TEST(StaticAffinityTest, AllZeroGroupStaysZero) {
  PairTable table(3);
  const std::vector<UserId> group{0, 1, 2};
  const auto values = NormalizeWithinGroup(table, group);
  for (const double v : values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LocalPairIndexTest, EnumeratesRowMajorUpperTriangle) {
  // Group of 4 -> pairs (0,1)(0,2)(0,3)(1,2)(1,3)(2,3) = 0..5.
  EXPECT_EQ(LocalPairIndex(0, 1, 4), 0u);
  EXPECT_EQ(LocalPairIndex(0, 2, 4), 1u);
  EXPECT_EQ(LocalPairIndex(0, 3, 4), 2u);
  EXPECT_EQ(LocalPairIndex(1, 2, 4), 3u);
  EXPECT_EQ(LocalPairIndex(1, 3, 4), 4u);
  EXPECT_EQ(LocalPairIndex(2, 3, 4), 5u);
}

class PeriodicAffinityTest : public ::testing::Test {
 protected:
  // 3 users, 2 periods of 100s; categories chosen so intersections are known.
  PeriodicAffinityTest() {
    std::vector<PageLikeEvent> events{
        // Period 0: u0 likes {1,2,3}, u1 likes {2,3}, u2 likes {9}.
        {0, 1, 10}, {0, 2, 20}, {0, 3, 30},
        {1, 2, 15}, {1, 3, 25},
        {2, 9, 50},
        // Period 1: u0 likes {1}, u1 likes {1}, u2 likes {1}.
        {0, 1, 110}, {1, 1, 120}, {2, 1, 130},
    };
    log_ = PageLikeLog::FromEvents(3, 10, std::move(events));
    timeline_ = Timeline::FixedWindows(0, 200, 100);
  }

  PageLikeLog log_;
  Timeline timeline_ = Timeline::FixedWindows(0, 1, 1);
};

TEST_F(PeriodicAffinityTest, RawCommonCategoryCounts) {
  const PeriodicAffinity pa = PeriodicAffinity::Compute(log_, timeline_);
  ASSERT_EQ(pa.num_periods(), 2u);
  EXPECT_DOUBLE_EQ(pa.Raw(0, 1, 0), 2.0);  // {2,3}
  EXPECT_DOUBLE_EQ(pa.Raw(0, 2, 0), 0.0);
  EXPECT_DOUBLE_EQ(pa.Raw(1, 2, 0), 0.0);
  EXPECT_DOUBLE_EQ(pa.Raw(0, 1, 1), 1.0);  // {1}
  EXPECT_DOUBLE_EQ(pa.Raw(0, 2, 1), 1.0);
}

TEST_F(PeriodicAffinityTest, PopulationAverageMatchesDefinition) {
  const PeriodicAffinity pa = PeriodicAffinity::Compute(log_, timeline_);
  // Period 0: pair sums = 2+0+0 = 2; avg = 2*2/(3*2) ... = 2/3.
  EXPECT_NEAR(pa.PopulationAverageRaw(0), 2.0 / 3.0, 1e-12);
  // Period 1: all three pairs share {1}: sum=3, avg = 1.
  EXPECT_NEAR(pa.PopulationAverageRaw(1), 1.0, 1e-12);
}

TEST_F(PeriodicAffinityTest, ClosedFormEqualsNaivePairScan) {
  for (PeriodId p = 0; p < timeline_.num_periods(); ++p) {
    const Period& period = timeline_.period(p);
    EXPECT_NEAR(SumPairwiseCommonCategories(log_, period),
                SumPairwiseCommonCategoriesNaive(log_, period), 1e-12);
  }
}

TEST_F(PeriodicAffinityTest, ClosedFormEqualsNaiveOnRandomLogs) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<PageLikeEvent> events;
    const std::size_t n = 12;
    for (UserId u = 0; u < n; ++u) {
      const auto count = static_cast<std::size_t>(rng.NextInt(0, 20));
      for (std::size_t e = 0; e < count; ++e) {
        events.push_back({u, static_cast<CategoryId>(rng.NextBounded(15)),
                          rng.NextInt(0, 999)});
      }
    }
    const PageLikeLog log = PageLikeLog::FromEvents(n, 15, std::move(events));
    const Period period{0, 1'000};
    EXPECT_NEAR(SumPairwiseCommonCategories(log, period),
                SumPairwiseCommonCategoriesNaive(log, period), 1e-9);
  }
}

TEST_F(PeriodicAffinityTest, NormalizationToUnitInterval) {
  const PeriodicAffinity pa = PeriodicAffinity::Compute(log_, timeline_);
  EXPECT_DOUBLE_EQ(pa.Normalized(0, 1, 0), 1.0);  // the max pair
  for (PeriodId p = 0; p < 2; ++p) {
    for (UserId u = 0; u < 3; ++u) {
      for (UserId v = u + 1; v < 3; ++v) {
        const double x = pa.Normalized(u, v, p);
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
      }
    }
  }
}

TEST_F(PeriodicAffinityTest, EmptyPeriodYieldsZeroes) {
  const Timeline t3 = Timeline::FixedWindows(0, 300, 100);
  const PeriodicAffinity pa = PeriodicAffinity::Compute(log_, t3);
  ASSERT_EQ(pa.num_periods(), 3u);
  EXPECT_DOUBLE_EQ(pa.PeriodMax(2), 0.0);
  EXPECT_DOUBLE_EQ(pa.Normalized(0, 1, 2), 0.0);
  EXPECT_DOUBLE_EQ(pa.PopulationAverageNormalized(2), 0.0);
}

TEST_F(PeriodicAffinityTest, IncrementalIndexEqualsRecompute) {
  const PeriodicAffinity pa = PeriodicAffinity::Compute(log_, timeline_);
  const DynamicAffinityIndex index = DynamicAffinityIndex::Build(pa);
  ASSERT_EQ(index.num_periods(), 2u);
  for (PeriodId p = 0; p < 2; ++p) {
    for (UserId u = 0; u < 3; ++u) {
      for (UserId v = u + 1; v < 3; ++v) {
        EXPECT_NEAR(index.CumulativeDrift(u, v, p),
                    RecomputeCumulativeDrift(pa, u, v, p), 1e-12)
            << "pair (" << u << "," << v << ") period " << p;
      }
    }
  }
}

TEST_F(PeriodicAffinityTest, MeanDriftBounded) {
  const PeriodicAffinity pa = PeriodicAffinity::Compute(log_, timeline_);
  const DynamicAffinityIndex index = DynamicAffinityIndex::Build(pa);
  for (PeriodId p = 0; p < 2; ++p) {
    for (UserId u = 0; u < 3; ++u) {
      for (UserId v = u + 1; v < 3; ++v) {
        const double d = index.MeanDrift(u, v, p);
        EXPECT_GE(d, -1.0);
        EXPECT_LE(d, 1.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Temporal models.
// ---------------------------------------------------------------------------

TEST(AffinityModelSpecTest, Names) {
  EXPECT_EQ(AffinityModelSpec::Default().Name(), "discrete");
  EXPECT_EQ(AffinityModelSpec::Continuous().Name(), "continuous");
  EXPECT_EQ(AffinityModelSpec::AffinityAgnostic().Name(), "affinity-agnostic");
  EXPECT_EQ(AffinityModelSpec::TimeAgnostic().Name(), "time-agnostic");
}

TEST(AffinityCombinerTest, AffinityAgnosticIsZero) {
  const AffinityCombiner combiner(AffinityModelSpec::AffinityAgnostic(), {});
  EXPECT_DOUBLE_EQ(combiner.Combine(0.9, {}), 0.0);
  EXPECT_DOUBLE_EQ(combiner.MaxAffinity(), 0.0);
}

TEST(AffinityCombinerTest, TimeAgnosticReturnsStatic) {
  const AffinityCombiner combiner(AffinityModelSpec::TimeAgnostic(), {});
  EXPECT_DOUBLE_EQ(combiner.Combine(0.7, {}), 0.7);
}

AffinityModelSpec UnitGain(AffinityModelSpec spec) {
  spec.drift_gain = 1.0;
  return spec;
}

TEST(AffinityCombinerTest, DiscreteAddsMeanDrift) {
  // Two periods with averages 0.2, 0.4 (gain pinned to 1 for hand numbers).
  const AffinityCombiner combiner(UnitGain(AffinityModelSpec::Default()),
                                  {0.2, 0.4});
  const std::vector<double> aff_p{0.8, 0.6};
  // drift = ((0.8-0.2)+(0.6-0.4))/2 = 0.4;  affD = 0.5 + 0.4 = 0.9.
  EXPECT_NEAR(combiner.MeanDrift(aff_p), 0.4, 1e-12);
  EXPECT_NEAR(combiner.Combine(0.5, aff_p), 0.9, 1e-12);
}

TEST(AffinityCombinerTest, DiscreteClampsToUnitInterval) {
  const AffinityCombiner combiner(UnitGain(AffinityModelSpec::Default()),
                                  {0.0});
  EXPECT_DOUBLE_EQ(combiner.Combine(0.9, std::vector<double>{1.0}), 1.0);
  const AffinityCombiner high_avg(UnitGain(AffinityModelSpec::Default()),
                                  {1.0});
  EXPECT_DOUBLE_EQ(high_avg.Combine(0.1, std::vector<double>{0.0}), 0.0);
}

TEST(AffinityCombinerTest, DriftGainAmplifiesSmallDrifts) {
  AffinityModelSpec gained = AffinityModelSpec::Default();
  gained.drift_gain = 4.0;
  const AffinityCombiner weak(UnitGain(AffinityModelSpec::Default()), {0.0});
  const AffinityCombiner strong(gained, {0.0});
  const std::vector<double> aff_p{0.1};
  EXPECT_NEAR(weak.Combine(0.2, aff_p), 0.3, 1e-12);
  EXPECT_NEAR(strong.Combine(0.2, aff_p), 0.6, 1e-12);
  // Gain never pushes the effective drift outside [-1, 1].
  EXPECT_NEAR(strong.MeanDrift(std::vector<double>{0.9}), 1.0, 1e-12);
}

TEST(AffinityCombinerTest, ContinuousGrowsAndDecaysAroundStatic) {
  const AffinityCombiner combiner(UnitGain(AffinityModelSpec::Continuous()),
                                  {0.5, 0.5});
  // Zero drift: e^0 = 1 -> affC = affS.
  EXPECT_NEAR(combiner.Combine(0.4, std::vector<double>{0.5, 0.5}), 0.4,
              1e-12);
  // Positive drift grows, negative decays.
  const double grown = combiner.Combine(0.4, std::vector<double>{1.0, 1.0});
  const double decayed = combiner.Combine(0.4, std::vector<double>{0.0, 0.0});
  EXPECT_GT(grown, 0.4);
  EXPECT_LT(decayed, 0.4);
  EXPECT_NEAR(decayed, 0.4 * std::exp(-0.5), 1e-12);
}

TEST(AffinityCombinerTest, ContinuousZeroStaticStaysZero) {
  const AffinityCombiner combiner(AffinityModelSpec::Continuous(), {0.0});
  EXPECT_DOUBLE_EQ(combiner.Combine(0.0, std::vector<double>{1.0}), 0.0);
}

/// Property: both models are monotone non-decreasing in affS and every affP,
/// and interval propagation encloses the exact value.
class CombinerPropertyTest
    : public ::testing::TestWithParam<AffinityModelSpec> {};

TEST_P(CombinerPropertyTest, MonotoneInEveryArgument) {
  Rng rng(53);
  const AffinityCombiner combiner(GetParam(), {0.3, 0.1, 0.4});
  for (int trial = 0; trial < 200; ++trial) {
    const double aff_s = rng.NextDouble();
    std::vector<double> aff_p{rng.NextDouble(), rng.NextDouble(),
                              rng.NextDouble()};
    const double base = combiner.Combine(aff_s, aff_p);
    EXPECT_GE(combiner.Combine(std::min(1.0, aff_s + 0.1), aff_p),
              base - 1e-12);
    for (std::size_t j = 0; j < aff_p.size(); ++j) {
      auto bumped = aff_p;
      bumped[j] = std::min(1.0, bumped[j] + 0.1);
      EXPECT_GE(combiner.Combine(aff_s, bumped), base - 1e-12);
    }
  }
}

TEST_P(CombinerPropertyTest, IntervalEnclosesExact) {
  Rng rng(59);
  const AffinityCombiner combiner(GetParam(), {0.3, 0.1, 0.4});
  for (int trial = 0; trial < 200; ++trial) {
    // Random intervals and a random point inside each.
    Interval s{rng.NextDouble(0.0, 0.5), 0.0};
    s.ub = s.lb + rng.NextDouble(0.0, 0.5);
    std::vector<Interval> p_iv(3);
    std::vector<double> p_exact(3);
    for (std::size_t j = 0; j < 3; ++j) {
      p_iv[j].lb = rng.NextDouble(0.0, 0.5);
      p_iv[j].ub = p_iv[j].lb + rng.NextDouble(0.0, 0.5);
      p_exact[j] = rng.NextDouble(p_iv[j].lb, p_iv[j].ub);
    }
    const double s_exact = rng.NextDouble(s.lb, s.ub);
    const Interval out = combiner.CombineInterval(s, p_iv);
    const double exact = combiner.Combine(s_exact, p_exact);
    EXPECT_LE(out.lb, exact + 1e-12);
    EXPECT_GE(out.ub, exact - 1e-12);
  }
}

TEST_P(CombinerPropertyTest, OutputInUnitInterval) {
  Rng rng(61);
  const AffinityCombiner combiner(GetParam(), {0.3, 0.1, 0.4});
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<double> aff_p{rng.NextDouble(), rng.NextDouble(),
                                    rng.NextDouble()};
    const double a = combiner.Combine(rng.NextDouble(), aff_p);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, CombinerPropertyTest,
    ::testing::Values(AffinityModelSpec::Default(),
                      AffinityModelSpec::Continuous()),
    [](const ::testing::TestParamInfo<AffinityModelSpec>& param_info) {
      return param_info.param.time_model == TimeModel::kDiscrete ? "Discrete"
                                                           : "Continuous";
    });

// ---------------------------------------------------------------------------
// Running example (paper Tables 2–4): affinity of (u1,u2) decreased between
// p1 (0.8) and p2 (0.7) but stays the strongest pair.
// ---------------------------------------------------------------------------

TEST(RunningExampleAffinity, PairOrderingPreservedByBothModels) {
  const std::vector<double> averages{0.2, 0.15};
  for (const auto spec :
       {AffinityModelSpec::Default(), AffinityModelSpec::Continuous()}) {
    const AffinityCombiner combiner(spec, averages);
    const double a12 =
        combiner.Combine(1.0, std::vector<double>{0.8, 0.7});
    const double a13 =
        combiner.Combine(0.2, std::vector<double>{0.1, 0.1});
    const double a23 =
        combiner.Combine(0.3, std::vector<double>{0.2, 0.1});
    EXPECT_GT(a12, a23) << spec.Name();
    EXPECT_GT(a23, a13) << spec.Name();
  }
}

}  // namespace
}  // namespace greca
