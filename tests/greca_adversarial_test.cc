// Adversarial inputs for GRECA: heavy ties, constant lists, degenerate
// affinities, anti-correlated members — cases where bound arithmetic and
// termination logic are easiest to get wrong. Every case cross-checks the
// returned score multiset against the exhaustive scan.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/greca.h"
#include "test_util.h"
#include "topk/naive.h"

namespace greca {
namespace {

GroupProblem BuildProblem(std::vector<std::vector<double>> pref_scores,
                          std::vector<double> static_aff,
                          std::vector<std::vector<double>> period_aff,
                          ConsensusSpec consensus = ConsensusSpec::AveragePreference(),
                          AffinityModelSpec model = AffinityModelSpec::Default()) {
  const auto m = static_cast<ListKey>(pref_scores[0].size());
  std::vector<SortedList> pref_lists;
  for (const auto& scores : pref_scores) {
    std::vector<ListEntry> entries;
    for (ListKey i = 0; i < scores.size(); ++i) {
      entries.push_back({i, scores[i]});
    }
    pref_lists.push_back(SortedList::FromUnsorted(std::move(entries), m));
  }
  const auto pairs = static_cast<ListKey>(static_aff.size());
  std::vector<ListEntry> static_entries;
  for (ListKey q = 0; q < pairs; ++q) {
    static_entries.push_back({q, static_aff[q]});
  }
  SortedList static_list =
      SortedList::FromUnsorted(std::move(static_entries), pairs);
  std::vector<SortedList> period_lists;
  std::vector<double> averages;
  for (const auto& values : period_aff) {
    std::vector<ListEntry> entries;
    for (ListKey q = 0; q < values.size(); ++q) {
      entries.push_back({q, values[q]});
    }
    period_lists.push_back(SortedList::FromUnsorted(std::move(entries), pairs));
    averages.push_back(0.2);
  }
  if (!model.time_aware || !model.affinity_aware) {
    period_lists.clear();
    averages.clear();
  }
  std::vector<SortedList> agreement;
  if (consensus.disagreement == DisagreementKind::kPairwise) {
    agreement = BuildAgreementLists(pref_lists, m,
                                    consensus.disagreement_scale);
  }
  return GroupProblem(m, std::move(pref_lists), std::move(static_list),
                      std::move(period_lists),
                      AffinityCombiner(model, std::move(averages)), consensus,
                      std::move(agreement));
}

void ExpectMatchesNaive(const GroupProblem& problem, std::size_t k,
                        const char* label) {
  GrecaConfig config;
  config.k = k;
  const TopKResult greca = Greca(problem, config);
  const TopKResult naive = NaiveTopK(problem, k);
  ASSERT_EQ(greca.items.size(), naive.items.size()) << label;
  const auto gs = testing::ExactScoresSorted(problem, greca.items);
  const auto ns = testing::ExactScoresSorted(problem, naive.items);
  for (std::size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i], ns[i], 1e-9) << label << " rank " << i;
  }
}

TEST(GrecaAdversarialTest, AllScoresIdentical) {
  // Every item ties exactly; any k-subset is a valid answer.
  const std::vector<double> flat(40, 0.5);
  const GroupProblem problem =
      BuildProblem({flat, flat, flat}, {0.5, 0.5, 0.5},
                   {{0.5, 0.5, 0.5}});
  ExpectMatchesNaive(problem, 7, "all-ties");
}

TEST(GrecaAdversarialTest, AllZeroPreferences) {
  const std::vector<double> zero(25, 0.0);
  const GroupProblem problem =
      BuildProblem({zero, zero}, {0.0}, {{0.0}});
  ExpectMatchesNaive(problem, 5, "all-zero");
}

TEST(GrecaAdversarialTest, MassiveTiePlateaus) {
  // Two plateaus: 20 items at 0.9, 20 at 0.1; k cuts through the plateau.
  std::vector<double> plateau(40);
  for (std::size_t i = 0; i < 40; ++i) plateau[i] = i < 20 ? 0.9 : 0.1;
  const GroupProblem problem = BuildProblem(
      {plateau, plateau, plateau}, {1.0, 0.2, 0.4}, {{0.3, 0.3, 0.3}});
  ExpectMatchesNaive(problem, 10, "plateau");
  ExpectMatchesNaive(problem, 20, "plateau-boundary");
  ExpectMatchesNaive(problem, 25, "plateau-crossing");
}

TEST(GrecaAdversarialTest, PerfectlyAntiCorrelatedMembers) {
  // Member 2 ranks items in exactly the reverse order of member 1.
  std::vector<double> up(30), down(30);
  for (std::size_t i = 0; i < 30; ++i) {
    up[i] = static_cast<double>(i) / 29.0;
    down[i] = static_cast<double>(29 - i) / 29.0;
  }
  for (const auto consensus :
       {ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery(),
        ConsensusSpec::PairwiseDisagreement(0.2)}) {
    const GroupProblem problem =
        BuildProblem({up, down}, {0.7}, {{0.5}}, consensus);
    ExpectMatchesNaive(problem, 5, consensus.Name().c_str());
  }
}

TEST(GrecaAdversarialTest, OneDominantItem) {
  std::vector<double> spiky(50, 0.01);
  spiky[17] = 1.0;
  const GroupProblem problem =
      BuildProblem({spiky, spiky, spiky}, {0.9, 0.9, 0.9}, {{0.8, 0.8, 0.8}});
  GrecaConfig config;
  config.k = 1;
  const TopKResult result = Greca(problem, config);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].id, 17u);
  EXPECT_TRUE(result.early_terminated);
  // The dominant item separates immediately: tiny scan depth.
  EXPECT_LT(result.SequentialAccessPercent(), 15.0);
}

TEST(GrecaAdversarialTest, ZeroAffinityGroupStillCorrect) {
  Rng rng(404);
  std::vector<std::vector<double>> prefs(4, std::vector<double>(30));
  for (auto& list : prefs) {
    for (auto& s : list) s = rng.NextDouble();
  }
  const GroupProblem problem = BuildProblem(
      prefs, {0.0, 0.0, 0.0, 0.0, 0.0, 0.0},
      {{0.0, 0.0, 0.0, 0.0, 0.0, 0.0}});
  ExpectMatchesNaive(problem, 6, "zero-affinity");
}

TEST(GrecaAdversarialTest, SingleMemberGroup) {
  std::vector<double> scores(20);
  Rng rng(405);
  for (auto& s : scores) s = rng.NextDouble();
  const GroupProblem problem = BuildProblem({scores}, {}, {{}});
  ExpectMatchesNaive(problem, 4, "singleton");
}

TEST(GrecaAdversarialTest, ManyPeriodsSparseAffinity) {
  // 12 periods, affinity present in only one of them.
  Rng rng(406);
  std::vector<std::vector<double>> prefs(3, std::vector<double>(25));
  for (auto& list : prefs) {
    for (auto& s : list) s = rng.NextDouble();
  }
  std::vector<std::vector<double>> periods(12,
                                           std::vector<double>(3, 0.0));
  periods[7] = {0.9, 0.5, 0.1};
  const GroupProblem problem =
      BuildProblem(prefs, {0.4, 0.6, 0.2}, periods);
  ExpectMatchesNaive(problem, 5, "sparse-periods");
}

TEST(GrecaAdversarialTest, ContinuousModelExtremeDrifts) {
  Rng rng(407);
  std::vector<std::vector<double>> prefs(3, std::vector<double>(25));
  for (auto& list : prefs) {
    for (auto& s : list) s = rng.NextDouble();
  }
  // Max positive drift on one pair, max negative on another.
  const GroupProblem problem = BuildProblem(
      prefs, {0.5, 0.5, 0.5}, {{1.0, 0.0, 0.5}, {1.0, 0.0, 0.5}},
      ConsensusSpec::AveragePreference(), AffinityModelSpec::Continuous());
  ExpectMatchesNaive(problem, 5, "continuous-extreme");
}

TEST(GrecaAdversarialTest, ThresholdOnlyNeverWrongEvenOnTies) {
  const std::vector<double> flat(30, 0.7);
  const GroupProblem problem =
      BuildProblem({flat, flat}, {0.5}, {{0.5}});
  GrecaConfig config;
  config.k = 5;
  config.termination = TerminationPolicy::kThresholdOnly;
  ExpectMatchesNaive(problem, 5, "threshold-only-ties");
  const TopKResult result = Greca(problem, config);
  EXPECT_EQ(result.items.size(), 5u);
}

}  // namespace
}  // namespace greca
