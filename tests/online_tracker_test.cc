// Tests for streaming affinity maintenance: the online tracker must agree
// exactly with batch construction, period by period.
#include <gtest/gtest.h>

#include "affinity/online_tracker.h"
#include "dataset/page_likes.h"
#include "timeline/period.h"

namespace greca {
namespace {

class OnlineTrackerTest : public ::testing::Test {
 protected:
  OnlineTrackerTest() {
    PageLikeGenConfig config;
    config.num_users = 24;
    config.seed = 77;
    timeline_ = Timeline::FixedWindows(0, 6 * 61 * kSecondsPerDay,
                                       61 * kSecondsPerDay);
    likes_ = GeneratePageLikes(config, timeline_).log;
  }
  Timeline timeline_ = Timeline::FixedWindows(0, 1, 1);
  PageLikeLog likes_;
};

TEST_F(OnlineTrackerTest, StreamingEqualsBatchPeriodByPeriod) {
  const PeriodicAffinity batch = PeriodicAffinity::Compute(likes_, timeline_);
  OnlineAffinityTracker tracker(likes_.num_users());
  for (PeriodId p = 0; p < timeline_.num_periods(); ++p) {
    tracker.ObservePeriod(likes_, timeline_.period(p));
    ASSERT_EQ(tracker.num_periods(), p + 1u);
    for (UserId u = 0; u < likes_.num_users(); ++u) {
      for (UserId v = u + 1; v < likes_.num_users(); ++v) {
        EXPECT_DOUBLE_EQ(tracker.periodic().Raw(u, v, p), batch.Raw(u, v, p));
        EXPECT_DOUBLE_EQ(tracker.periodic().Normalized(u, v, p),
                         batch.Normalized(u, v, p));
      }
    }
    EXPECT_DOUBLE_EQ(tracker.periodic().PopulationAverageRaw(p),
                     batch.PopulationAverageRaw(p));
  }
}

TEST_F(OnlineTrackerTest, DriftIndexFollowsTheStream) {
  const PeriodicAffinity batch = PeriodicAffinity::Compute(likes_, timeline_);
  const DynamicAffinityIndex batch_drift = DynamicAffinityIndex::Build(batch);
  OnlineAffinityTracker tracker(likes_.num_users());
  for (PeriodId p = 0; p < timeline_.num_periods(); ++p) {
    tracker.ObservePeriod(likes_, timeline_.period(p));
  }
  ASSERT_EQ(tracker.drift().num_periods(), timeline_.num_periods());
  for (UserId u = 0; u < likes_.num_users(); ++u) {
    for (UserId v = u + 1; v < likes_.num_users(); ++v) {
      for (PeriodId p = 0; p < timeline_.num_periods(); ++p) {
        EXPECT_NEAR(tracker.drift().CumulativeDrift(u, v, p),
                    batch_drift.CumulativeDrift(u, v, p), 1e-12);
      }
    }
  }
}

TEST_F(OnlineTrackerTest, EarlierPeriodsAreImmutable) {
  OnlineAffinityTracker tracker(likes_.num_users());
  tracker.ObservePeriod(likes_, timeline_.period(0));
  const double before = tracker.periodic().Raw(0, 1, 0);
  const double drift_before = tracker.drift().CumulativeDrift(0, 1, 0);
  tracker.ObservePeriod(likes_, timeline_.period(1));
  tracker.ObservePeriod(likes_, timeline_.period(2));
  EXPECT_DOUBLE_EQ(tracker.periodic().Raw(0, 1, 0), before);
  EXPECT_DOUBLE_EQ(tracker.drift().CumulativeDrift(0, 1, 0), drift_before);
}

TEST_F(OnlineTrackerTest, CurrentAffinityMatchesCombiner) {
  OnlineAffinityTracker tracker(likes_.num_users());
  for (PeriodId p = 0; p < timeline_.num_periods(); ++p) {
    tracker.ObservePeriod(likes_, timeline_.period(p));
  }
  // Recompute by hand through the combiner.
  std::vector<double> averages, aff_p;
  for (PeriodId p = 0; p < tracker.num_periods(); ++p) {
    averages.push_back(tracker.periodic().PopulationAverageNormalized(p));
    aff_p.push_back(tracker.periodic().Normalized(2, 5, p));
  }
  const AffinityCombiner combiner(AffinityModelSpec::Default(), averages);
  EXPECT_NEAR(tracker.CurrentAffinity(2, 5, AffinityModelSpec::Default(), 0.4),
              combiner.Combine(0.4, aff_p), 1e-12);
  // Affinity-agnostic spec always yields zero.
  EXPECT_DOUBLE_EQ(
      tracker.CurrentAffinity(2, 5, AffinityModelSpec::AffinityAgnostic(),
                              0.4),
      0.0);
}

TEST_F(OnlineTrackerTest, EmptyTrackerFallsBackToStatic) {
  OnlineAffinityTracker tracker(4);
  EXPECT_EQ(tracker.num_periods(), 0u);
  EXPECT_DOUBLE_EQ(
      tracker.CurrentAffinity(0, 1, AffinityModelSpec::Default(), 0.7), 0.7);
}

}  // namespace
}  // namespace greca
