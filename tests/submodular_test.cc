// The submodular-greedy solver's contract:
//  * λ = 1 degenerates to the exact consensus ranking — same items, same
//    order, same scores and the same access accounting as the naive scan;
//  * λ < 1 trades relevance for facility-location coverage: on a group with
//    orthogonal tastes the greedy list covers every member where the exact
//    ranking serves only the majority taste;
//  * reported scores are marginal gains, non-increasing by submodularity;
//  * the solver runs end-to-end through QueryBuilder, Engine::Recommend and
//    RecommendBatch (planned bit-identical to unplanned).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "api/engine.h"
#include "api/query_builder.h"
#include "common/rng.h"
#include "solver/submodular_solver.h"
#include "test_util.h"
#include "topk/naive.h"

namespace greca {
namespace {

QuerySpec SpecForK(std::size_t k) {
  QuerySpec spec;
  spec.k = k;
  spec.solver_id = std::string(kSubmodularSolverId);
  return spec;
}

TEST(SubmodularSolverTest, LambdaOneMatchesNaiveExactly) {
  const SubmodularGreedySolver solver(1.0);
  Rng rng(91);
  for (const ConsensusSpec& consensus :
       {ConsensusSpec::AveragePreference(), ConsensusSpec::LeastMisery(),
        ConsensusSpec::PairwiseDisagreement()}) {
    GroupProblem problem = greca::testing::MakeRandomProblem(
        rng, 4, 60, 3, consensus, AffinityModelSpec::Default());
    const TopKResult naive = NaiveTopK(problem, 8);
    QueryWorkspace ws;
    const SolverResult greedy = solver.Solve(problem, SpecForK(8), ws);
    ASSERT_EQ(greedy.raw.items.size(), naive.items.size());
    for (std::size_t i = 0; i < naive.items.size(); ++i) {
      EXPECT_EQ(greedy.raw.items[i].id, naive.items[i].id) << "rank " << i;
      EXPECT_DOUBLE_EQ(greedy.raw.items[i].score, naive.items[i].score);
    }
    // Same cost model as the exhaustive baseline: one full sequential scan.
    EXPECT_EQ(greedy.raw.accesses.sequential, naive.accesses.sequential);
    EXPECT_EQ(greedy.raw.accesses.random, naive.accesses.random);
    EXPECT_EQ(greedy.raw.total_entries, naive.total_entries);
  }
}

// Two members with orthogonal tastes over four items. The exact average
// ranking serves member A twice; coverage-weighted greedy gives each member
// the item they love.
GroupProblem OrthogonalTastesProblem() {
  const auto list = [](std::initializer_list<double> scores) {
    std::vector<ListEntry> entries;
    ListKey key = 0;
    for (const double s : scores) entries.push_back({key++, s});
    return SortedList::FromUnsorted(std::move(entries), 4);
  };
  std::vector<SortedList> pref_lists;
  pref_lists.push_back(list({1.0, 0.92, 0.1, 0.0}));  // A loves items 0, 1
  pref_lists.push_back(list({0.0, 0.10, 0.2, 0.9}));  // B loves item 3
  SortedList static_list =
      SortedList::FromUnsorted({{0, 0.5}}, 1);  // one pair, ignored below
  AffinityCombiner combiner(AffinityModelSpec::AffinityAgnostic(), {});
  return GroupProblem(4, std::move(pref_lists), std::move(static_list), {},
                      std::move(combiner), ConsensusSpec::AveragePreference(),
                      {});
}

TEST(SubmodularSolverTest, CoverageServesEveryMember) {
  GroupProblem problem = OrthogonalTastesProblem();
  // Averages: item0 = .50, item1 = .51, item2 = .15, item3 = .45 — the exact
  // ranking's top-2 is {1, 0}, both member A's favourites.
  const TopKResult naive = NaiveTopK(problem, 2);
  ASSERT_EQ(naive.items.size(), 2u);
  EXPECT_EQ(naive.items[0].id, 1u);
  EXPECT_EQ(naive.items[1].id, 0u);

  // Pure coverage (λ = 0): round 1 picks item 1 (best average coverage),
  // round 2's marginal gains are item0 ≈ .04, item2 = .05, item3 = .40 —
  // member B finally gets item 3.
  const SubmodularGreedySolver coverage(0.0);
  QueryWorkspace ws;
  const SolverResult greedy = coverage.Solve(problem, SpecForK(2), ws);
  ASSERT_EQ(greedy.raw.items.size(), 2u);
  EXPECT_EQ(greedy.raw.items[0].id, 1u);
  EXPECT_EQ(greedy.raw.items[1].id, 3u);

  // The balanced default keeps the same diverse pick on this group.
  const SubmodularGreedySolver balanced;
  const SolverResult mixed = balanced.Solve(problem, SpecForK(2), ws);
  ASSERT_EQ(mixed.raw.items.size(), 2u);
  EXPECT_EQ(mixed.raw.items[0].id, 1u);
  EXPECT_EQ(mixed.raw.items[1].id, 3u);
}

TEST(SubmodularSolverTest, ScoresAreNonIncreasingMarginalGains) {
  Rng rng(17);
  GroupProblem problem = greca::testing::MakeRandomProblem(
      rng, 5, 80, 2, ConsensusSpec::AveragePreference(),
      AffinityModelSpec::Default());
  const SubmodularGreedySolver solver(0.3);
  QueryWorkspace ws;
  const SolverResult result = solver.Solve(problem, SpecForK(10), ws);
  ASSERT_EQ(result.raw.items.size(), 10u);
  EXPECT_EQ(result.raw.rounds, 10u);
  EXPECT_FALSE(result.raw.early_terminated);
  EXPECT_EQ(result.raw.accesses.random, 0u);
  for (std::size_t i = 1; i < result.raw.items.size(); ++i) {
    EXPECT_GE(result.raw.items[i - 1].score, result.raw.items[i].score);
  }
}

TEST(SubmodularSolverTest, RunsEndToEndThroughEngineAndBatch) {
  SyntheticRatingsConfig uc;
  uc.num_users = 160;
  uc.num_items = 260;
  uc.target_ratings = 10'000;
  uc.seed = 55;
  const SyntheticRatings universe = GenerateSyntheticRatings(uc);
  FacebookStudyConfig sc;
  sc.diversity_pool = 120;
  const FacebookStudy study = GenerateFacebookStudy(sc, universe);

  RecommenderOptions options;
  options.max_candidate_items = 220;
  EngineOptions planned;
  planned.num_threads = 2;
  EngineOptions unplanned = planned;
  unplanned.plan_batches = false;
  const Engine engine(universe.dataset, study, options, planned);
  const Engine reference(universe.dataset, study, options, unplanned);

  const Result<Query> query = QueryBuilder(engine)
                                  .Members({0, 4, 9})
                                  .TopK(5)
                                  .Using(std::string(kSubmodularSolverId))
                                  .CandidatePool(220)
                                  .Build();
  ASSERT_TRUE(query.ok());
  const Result<Recommendation> single = engine.Recommend(query.value());
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value().items.size(), 5u);

  // A batch with duplicates and a solver mix: the planner shares problems
  // only within a solver id, and the planned path stays bit-identical.
  std::vector<Query> batch;
  batch.push_back(query.value());
  batch.push_back(query.value());  // duplicate — one solve, fanned out
  Query naive_query = query.value();
  naive_query.spec.solver_id = std::string(kNaiveSolverId);
  batch.push_back(naive_query);
  BatchReport report;
  const auto planned_results = engine.RecommendBatch(batch, &report);
  const auto reference_results = reference.RecommendBatch(batch);
  EXPECT_TRUE(report.planned);
  EXPECT_EQ(report.num_buckets, 2u);
  EXPECT_EQ(report.duplicates_shared, 1u);
  ASSERT_EQ(planned_results.size(), reference_results.size());
  for (std::size_t i = 0; i < planned_results.size(); ++i) {
    ASSERT_TRUE(planned_results[i].ok());
    ASSERT_TRUE(reference_results[i].ok());
    EXPECT_EQ(planned_results[i].value().items,
              reference_results[i].value().items);
    EXPECT_EQ(planned_results[i].value().scores,
              reference_results[i].value().scores);
  }
  // The two submodular copies differ from the naive result on this group —
  // the solver id reached the solve (and the planner kept them apart).
  EXPECT_TRUE(planned_results[0].value().scores !=
              planned_results[2].value().scores);
}

}  // namespace
}  // namespace greca
