// Tests for the shared PreferenceIndex: row ordering, the item↔key maps and
// prefix/tombstone slicing through UserView.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "index/preference_index.h"
#include "topk/list_view.h"

namespace greca {
namespace {

/// Zips a row's SoA key/score arrays back into entry order for assertions.
std::vector<ListEntry> RowEntries(const PreferenceIndex& index, UserId u) {
  const auto keys = index.UserKeys(u);
  const auto scores = index.UserScores(u);
  std::vector<ListEntry> row;
  row.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    row.push_back({keys[i], scores[i]});
  }
  return row;
}

PreferenceIndex MakeIndex() {
  // Two users over a 6-item universe; the pool keeps 4 items in "popularity"
  // order 5, 2, 0, 3 (universe item ids).
  const std::vector<std::vector<Score>> predictions = {
      {1.0, 2.0, 3.0, 4.0, 0.0, 5.0},  // user 0
      {4.0, 0.5, 4.0, 1.0, 2.5, 2.0},  // user 1
  };
  return PreferenceIndex::Build(predictions, /*scale_max=*/5.0,
                                {5, 2, 0, 3}, /*num_universe_items=*/6);
}

TEST(PreferenceIndexTest, PoolMapsRoundTrip) {
  const PreferenceIndex index = MakeIndex();
  EXPECT_EQ(index.num_users(), 2u);
  EXPECT_EQ(index.pool_size(), 4u);
  ASSERT_EQ(index.pool().size(), 4u);
  EXPECT_EQ(index.pool()[0], 5u);
  EXPECT_EQ(index.pool()[2], 0u);
  EXPECT_EQ(index.PoolPositionOf(5), 0u);
  EXPECT_EQ(index.PoolPositionOf(3), 3u);
  // Items outside the pool (or the universe) are kNotPooled.
  EXPECT_EQ(index.PoolPositionOf(1), PreferenceIndex::kNotPooled);
  EXPECT_EQ(index.PoolPositionOf(4), PreferenceIndex::kNotPooled);
  EXPECT_EQ(index.PoolPositionOf(999), PreferenceIndex::kNotPooled);
}

TEST(PreferenceIndexTest, RowsAreSortedDescendingWithPoolKeyTies) {
  const PreferenceIndex index = MakeIndex();
  // User 0 pool scores (key order): item5=1.0, item2=0.6, item0=0.2,
  // item3=0.8 → sorted keys 0, 3, 1, 2.
  const auto row0 = RowEntries(index, 0);
  ASSERT_EQ(row0.size(), 4u);
  EXPECT_EQ(row0[0].id, 0u);
  EXPECT_DOUBLE_EQ(row0[0].score, 1.0);
  EXPECT_EQ(row0[1].id, 3u);
  EXPECT_DOUBLE_EQ(row0[1].score, 0.8);
  EXPECT_EQ(row0[2].id, 1u);
  EXPECT_EQ(row0[3].id, 2u);
  // User 1 pool scores: item5=0.4, item2=0.8, item0=0.8, item3=0.2 — the
  // 0.8 tie breaks by ascending pool key (1 before 2).
  const auto row1 = RowEntries(index, 1);
  EXPECT_EQ(row1[0].id, 1u);
  EXPECT_EQ(row1[1].id, 2u);
  EXPECT_EQ(row1[2].id, 0u);
  EXPECT_EQ(row1[3].id, 3u);
}

TEST(PreferenceIndexTest, UserViewSlicesPrefixAndSkipsTombstones) {
  const PreferenceIndex index = MakeIndex();
  // Prefix 3 (keys 0..2), tombstone key 0. User 0's live order: 1, 2.
  const std::vector<std::uint64_t> tombstones = {0b001};
  const ListView view = index.UserView(0, /*prefix=*/3, tombstones,
                                       /*live_entries=*/2);
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.key_space(), 3u);
  EXPECT_TRUE(view.IsTombstoned(0));
  EXPECT_FALSE(view.IsTombstoned(1));
  EXPECT_TRUE(view.IsTombstoned(3));  // beyond the prefix

  AccessCounter counter;
  std::size_t cursor = 0;
  ASSERT_TRUE(view.SkipToLive(cursor));
  EXPECT_EQ(view.ReadSequential(cursor, counter).id, 1u);
  ASSERT_TRUE(view.SkipToLive(cursor));
  EXPECT_EQ(view.ReadSequential(cursor, counter).id, 2u);
  EXPECT_FALSE(view.SkipToLive(cursor));
  EXPECT_EQ(counter.sequential, 2u);  // skipped entries are not counted

  // Random access: live keys read their score, dead keys read as absent.
  EXPECT_DOUBLE_EQ(view.ScoreOfKey(1), 0.6);
  EXPECT_DOUBLE_EQ(view.ScoreOfKey(0), 0.0);
  EXPECT_DOUBLE_EQ(view.ScoreOfKey(3), 0.0);
  EXPECT_DOUBLE_EQ(view.MaxScore(), 0.6);
}

TEST(PreferenceIndexTest, BandedRowsSortEachBandIndependently) {
  const std::vector<std::vector<Score>> predictions = {
      {1.0, 2.0, 3.0, 4.0, 0.0, 5.0},  // user 0
  };
  // Pool 5, 2, 0, 3 with one interior breakpoint at 2: band 0 = keys {0, 1},
  // band 1 = keys {2, 3}.
  const std::vector<std::uint32_t> breakpoints{2};
  const PreferenceIndex index = PreferenceIndex::Build(
      predictions, /*scale_max=*/5.0, {5, 2, 0, 3}, /*num_universe_items=*/6,
      breakpoints);
  EXPECT_EQ(index.num_bands(), 2u);
  ASSERT_EQ(index.band_boundaries().size(), 3u);
  EXPECT_EQ(index.band_boundaries()[1], 2u);

  // Key scores: key0=1.0, key1=0.6, key2=0.2, key3=0.8. Band-local order:
  // band 0 → 0, 1; band 1 → 3, 2 (NOT the global order 0, 3, 1, 2).
  const auto row = RowEntries(index, 0);
  EXPECT_EQ(row[0].id, 0u);
  EXPECT_EQ(row[1].id, 1u);
  EXPECT_EQ(row[2].id, 3u);
  EXPECT_EQ(row[3].id, 2u);

  // A full-prefix view covers the whole row, where the merge cannot pay for
  // itself: the flat-order twin serves it (global order, no merge), and
  // random access resolves through the matching position map.
  const ListView view = index.UserView(0, 4, {}, 4);
  EXPECT_EQ(view.num_bands(), 1u);
  EXPECT_EQ(view.scan_footprint(), 4u);
  AccessCounter counter;
  std::size_t cursor = 0;
  const std::uint32_t expected[] = {0, 3, 1, 2};
  for (const std::uint32_t id : expected) {
    ASSERT_TRUE(view.SkipToLive(cursor));
    EXPECT_EQ(view.ReadSequential(cursor, counter).id, id);
  }
  EXPECT_FALSE(view.SkipToLive(cursor));
  EXPECT_DOUBLE_EQ(view.ScoreOfKey(3), 0.8);
  EXPECT_DOUBLE_EQ(view.MaxScore(), 1.0);

  // A prefix inside the first band never receives band 1: flat single-band
  // view whose scan footprint is the band, not the row.
  const ListView prefix_view = index.UserView(0, 2, {}, 2);
  EXPECT_EQ(prefix_view.num_bands(), 1u);
  EXPECT_EQ(prefix_view.scan_footprint(), 2u);
}

TEST(PreferenceIndexTest, SmallPrefixViewMergesCoveredBands) {
  // Pool of 8 with bands {0..1}, {2..3}, {4..7}: a prefix of 3 covers two
  // bands (footprint 4 <= half the row), so the view is a real band merge
  // that must still read in global score order.
  const std::vector<std::vector<Score>> predictions = {
      {4.0, 1.0, 3.5, 2.0, 5.0, 0.5, 4.5, 1.5},
  };
  const std::vector<std::uint32_t> breakpoints{2, 4};
  const PreferenceIndex index = PreferenceIndex::Build(
      predictions, /*scale_max=*/5.0, {0, 1, 2, 3, 4, 5, 6, 7},
      /*num_universe_items=*/8, breakpoints);
  ASSERT_EQ(index.num_bands(), 3u);

  const ListView view = index.UserView(0, /*prefix=*/3, {}, 3);
  EXPECT_EQ(view.num_bands(), 2u);
  EXPECT_EQ(view.scan_footprint(), 4u);  // next boundary past the prefix
  // Key scores: 0→0.8, 1→0.2, 2→0.7 (key 3 is out of prefix).
  AccessCounter counter;
  std::size_t cursor = 0;
  const std::uint32_t expected[] = {0, 2, 1};
  for (const std::uint32_t id : expected) {
    ASSERT_TRUE(view.SkipToLive(cursor));
    EXPECT_EQ(view.ReadSequential(cursor, counter).id, id);
  }
  EXPECT_FALSE(view.SkipToLive(cursor));
  EXPECT_EQ(counter.sequential, 3u);
  EXPECT_DOUBLE_EQ(view.MaxScore(), 0.8);
}

TEST(PreferenceIndexTest, GeometricBandBreakpointsDoubleAndCap) {
  const auto bp = PreferenceIndex::GeometricBandBreakpoints(3'900, 64);
  const std::vector<std::uint32_t> expected{64, 128, 256, 512, 1024, 2048};
  EXPECT_EQ(bp, expected);
  // A prefix P >= 32 walks at most the first boundary >= P, which is < 2P.
  EXPECT_TRUE(PreferenceIndex::GeometricBandBreakpoints(64, 64).empty());
  EXPECT_TRUE(PreferenceIndex::GeometricBandBreakpoints(100, 0).empty());
  // Never more than ListView::kMaxBands bands even for huge pools.
  const auto huge =
      PreferenceIndex::GeometricBandBreakpoints(1u << 30, 1);
  EXPECT_LE(huge.size() + 1, ListView::kMaxBands);
}

TEST(PreferenceIndexTest, FullPrefixViewMatchesRow) {
  const PreferenceIndex index = MakeIndex();
  const ListView view = index.UserView(1, index.pool_size(), {},
                                       index.pool_size());
  EXPECT_EQ(view.size(), 4u);
  std::size_t cursor = 0;
  AccessCounter counter;
  const auto row = RowEntries(index, 1);
  for (std::size_t i = 0; i < row.size(); ++i) {
    ASSERT_TRUE(view.SkipToLive(cursor));
    const ListEntry& e = view.ReadSequential(cursor, counter);
    EXPECT_EQ(e.id, row[i].id);
    EXPECT_DOUBLE_EQ(e.score, row[i].score);
  }
  EXPECT_FALSE(view.SkipToLive(cursor));
}

}  // namespace
}  // namespace greca
