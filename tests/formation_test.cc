// The formation pipeline round trip (src/groups/formation_pipeline.h):
// sample → cluster → form → RecommendBatch → satisfaction, over a scale
// population served by the sharded engine. The pipeline's contract is
// end-to-end determinism — identical groups, recommendations, and
// satisfaction scores across runs and across the planned / unplanned /
// parallel / serial serving paths — plus the structural invariants of
// formation itself (disjoint groups of the requested size, drawn from
// cohort members only).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "affinity/affinity_source.h"
#include "dataset/synthetic.h"
#include "eval/satisfaction.h"
#include "groups/formation_pipeline.h"
#include "shard/sharded_engine.h"

namespace greca {
namespace {

class FormationPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScaleRatingsConfig sc;
    sc.num_users = 2'000;
    sc.num_items = 400;
    sc.seed = 33;
    scale_ = new SyntheticRatings(GenerateScaleRatings(sc));
  }
  static void TearDownTestSuite() {
    delete scale_;
    scale_ = nullptr;
  }

  static std::unique_ptr<ShardedEngine> MakeEngine(std::size_t num_shards,
                                                   bool plan_batches,
                                                   std::size_t batch_threads) {
    const RatingGroundTruth& truth = scale_->truth;
    ShardedEngineInputs inputs;
    inputs.ratings = std::shared_ptr<const RatingsDataset>(
        std::shared_ptr<const void>(), &scale_->dataset);
    inputs.affinity = std::make_shared<const ConstantAffinitySource>(
        scale_->dataset.num_users(), /*num_periods=*/1, /*static_value=*/1.0,
        /*periodic_value=*/1.0);
    inputs.predictor = [&truth](UserId u,
                                std::span<const UserRatingEntry> merged,
                                std::span<const ItemId> pool,
                                std::span<Score> out) {
      for (std::size_t k = 0; k < pool.size(); ++k) {
        const ItemId item = pool[k];
        const auto it = std::lower_bound(
            merged.begin(), merged.end(), item,
            [](const UserRatingEntry& e, ItemId i) { return e.item < i; });
        out[k] = (it != merged.end() && it->item == item)
                     ? it->rating
                     : truth.TruePreference(u, item);
      }
    };
    inputs.pool = scale_->dataset.TopPopularItems(96);
    inputs.num_universe_items = scale_->dataset.num_items();
    inputs.num_periods = 1;
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.plan_batches = plan_batches;
    options.batch_threads = batch_threads;
    return std::make_unique<ShardedEngine>(std::move(inputs), options);
  }

  static FormationPipelineConfig Config() {
    FormationPipelineConfig config;
    config.num_groups = 24;
    config.group_size = 4;
    config.candidate_users = 600;
    config.num_clusters = 4;
    config.num_feature_items = 32;
    config.greedy_window = 48;
    config.seed = 77;
    return config;
  }

  static FormationPipeline MakePipeline() {
    // Scale populations carry no social signal; constant affinity makes the
    // affinity-driven strategies degenerate but keeps them deterministic.
    return FormationPipeline(
        scale_->dataset, [](UserId, UserId) { return 1.0; }, Config());
  }

  static QuerySpec Spec() {
    QuerySpec spec;
    spec.k = 8;
    spec.model = AffinityModelSpec::TimeAgnostic();
    spec.num_candidate_items = 96;
    spec.eval_period = 0;
    return spec;
  }

  static SyntheticRatings* scale_;
};

SyntheticRatings* FormationPipelineTest::scale_ = nullptr;

TEST_F(FormationPipelineTest, FormsDisjointGroupsOfRequestedSize) {
  const FormationPipelineConfig config = Config();
  const std::vector<FormedGroup> groups = MakePipeline().FormGroups();
  ASSERT_EQ(groups.size(), config.num_groups);

  std::set<UserId> seen;
  std::set<std::size_t> strategies;
  for (const FormedGroup& g : groups) {
    EXPECT_EQ(g.members.size(), config.group_size);
    for (const UserId u : g.members) {
      EXPECT_LT(u, scale_->dataset.num_users());
      EXPECT_TRUE(seen.insert(u).second)
          << "user " << u << " appears in two groups";
    }
    strategies.insert(static_cast<std::size_t>(g.strategy));
  }
  // The strategy cycle covers all five flavors within 24 groups.
  EXPECT_EQ(strategies.size(), 5u);
}

TEST_F(FormationPipelineTest, FormationIsDeterministicAcrossRuns) {
  const std::vector<FormedGroup> a = MakePipeline().FormGroups();
  const std::vector<FormedGroup> b = MakePipeline().FormGroups();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].members, b[i].members) << "group " << i;
    EXPECT_EQ(a[i].strategy, b[i].strategy) << "group " << i;
    EXPECT_EQ(a[i].cluster, b[i].cluster) << "group " << i;
  }
}

// The full round trip — form → RecommendBatch → satisfaction — reproduces
// identical scores across independent runs and across serving paths
// (planned-parallel vs unplanned-serial engines over the same data).
TEST_F(FormationPipelineTest, RoundTripSatisfactionIsDeterministic) {
  const std::vector<FormedGroup> groups = MakePipeline().FormGroups();
  const std::vector<Query> queries =
      FormationPipeline::MakeQueries(groups, Spec());
  const SatisfactionOracle oracle(scale_->truth);

  const auto planned = MakeEngine(2, /*plan_batches=*/true,
                                  /*batch_threads=*/2);
  const auto unplanned = MakeEngine(2, /*plan_batches=*/false,
                                    /*batch_threads=*/1);

  BatchReport report;
  const auto results = planned->RecommendBatch(queries, &report);
  const FormationScore score =
      ScoreFormedGroups(oracle, groups, results, /*period=*/0);

  EXPECT_EQ(score.groups_failed, 0u);
  EXPECT_EQ(score.groups_scored, groups.size());
  EXPECT_GT(score.mean_satisfaction_pct, 0.0);
  EXPECT_LE(score.max_satisfaction_pct, 100.0);
  EXPECT_GE(score.min_satisfaction_pct, 0.0);
  ASSERT_EQ(score.per_group_pct.size(), groups.size());
  EXPECT_TRUE(report.planned);
  EXPECT_EQ(report.num_queries, queries.size());

  // Second run, fresh everything: bit-identical scores.
  const std::vector<FormedGroup> groups2 = MakePipeline().FormGroups();
  const auto results2 = planned->RecommendBatch(
      FormationPipeline::MakeQueries(groups2, Spec()), nullptr);
  const FormationScore score2 =
      ScoreFormedGroups(oracle, groups2, results2, /*period=*/0);
  EXPECT_EQ(score.per_group_pct, score2.per_group_pct);

  // The unplanned serial engine serves the same lists, so the same scores.
  const auto results3 = unplanned->RecommendBatch(queries, nullptr);
  const FormationScore score3 =
      ScoreFormedGroups(oracle, groups, results3, /*period=*/0);
  EXPECT_EQ(score.per_group_pct, score3.per_group_pct);
}

}  // namespace
}  // namespace greca
