#!/usr/bin/env bash
# Runs the perf-trajectory benches and records machine-readable results:
#   BENCH_micro.json  — google-benchmark microbenchmarks when available
#                       (BM_PrefixScanBanded/Flat track the banded-row
#                       prefix-scan win, BM_BuildProblem / BM_ProblemAssembly
#                       the zero-copy assembly cost); when google-benchmark
#                       is not installed, bench_batch's per-pool-size
#                       banded-vs-flat layout sweep is written here instead
#                       so the file always carries the layout qps numbers.
#   BENCH_batch.json  — bench_batch layout sweep (banded vs flat qps per
#                       candidate-pool size + entries walked per scan) when
#                       BENCH_micro.json is taken by google-benchmark.
#   BENCH_fig5.txt    — GRECA %SA scalability sweep (paper Figure 5)
#   BENCH_batch.txt   — Engine::RecommendBatch vs sequential throughput plus
#                       the problem_assembly_seconds / solve_seconds split,
#                       the period-cache cold/warm assembly comparison and
#                       the index-layout sweep table
#   BENCH_online.txt  — query p50/p99 with and without a concurrent writer
#                       applying live rating updates (RCU snapshot swap),
#                       plus the publish-latency-vs-accumulated-live-ratings
#                       curve (delta-log acceptance: steady p99 flat within
#                       1.5x while live ratings grow 10x)
#   BENCH_online.json — the same, machine-readable (queries/sec under a
#                       concurrent writer, snapshot-publish latency, the
#                       per-decile publish_curve with compaction counts)
#   BENCH_shard.txt / BENCH_shard.json — (with --shards) mixed read/write
#                       throughput vs shard count (1/2/4/8) x group
#                       locality over the million-user scale dataset
#                       (bench_shard; src/shard/)
#
# Usage: scripts/bench.sh [--layout banded|flat|both] [--shards] [build-dir]
#   --layout restricts bench_batch's index-layout sweep (default: both).
#   --shards additionally runs the sharded-engine scaling bench.
# Env:   GRECA_BENCH_SMALL=1 for a smoke-scale run.
set -euo pipefail
cd "$(dirname "$0")/.."

LAYOUT="both"
RUN_SHARDS=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --layout)
      LAYOUT="${2:?--layout needs banded|flat|both}"
      shift 2
      ;;
    --layout=*)
      LAYOUT="${1#--layout=}"
      shift
      ;;
    --shards)
      RUN_SHARDS=1
      shift
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_fig5_scalability bench_batch bench_online
# bench_micro exists only when google-benchmark is installed; always rebuild
# it so the recorded numbers match the current sources. Its output claims
# BENCH_micro.json; otherwise bench_batch's layout sweep lands there.
BATCH_JSON=BENCH_micro.json
if cmake --build "$BUILD_DIR" -j --target bench_micro 2>/dev/null; then
  "$BUILD_DIR"/bench/bench_micro \
    --benchmark_out=BENCH_micro.json --benchmark_out_format=json \
    --benchmark_repetitions=1
  BATCH_JSON=BENCH_batch.json
else
  echo "bench_micro unavailable (google-benchmark not installed);" \
       "BENCH_micro.json will carry bench_batch's layout sweep" >&2
fi

"$BUILD_DIR"/bench/bench_fig5_scalability | tee BENCH_fig5.txt
GRECA_BATCH_LAYOUT="$LAYOUT" GRECA_BATCH_JSON="$BATCH_JSON" \
  "$BUILD_DIR"/bench/bench_batch | tee BENCH_batch.txt
GRECA_BENCH_ONLINE_JSON=BENCH_online.json \
  "$BUILD_DIR"/bench/bench_online | tee BENCH_online.txt

SHARD_NOTE=""
if [[ "$RUN_SHARDS" == "1" ]]; then
  cmake --build "$BUILD_DIR" -j --target bench_shard
  GRECA_BENCH_SHARD_JSON=BENCH_shard.json \
    "$BUILD_DIR"/bench/bench_shard | tee BENCH_shard.txt
  SHARD_NOTE=" BENCH_shard.txt, BENCH_shard.json,"
fi

EXTRA_JSON=""
if [[ "$BATCH_JSON" != "BENCH_micro.json" ]]; then
  EXTRA_JSON=" $BATCH_JSON,"
fi
echo "Wrote BENCH_micro.json,${EXTRA_JSON}${SHARD_NOTE} BENCH_fig5.txt," \
     "BENCH_batch.txt, BENCH_online.txt, BENCH_online.json"
