#!/usr/bin/env bash
# Runs the perf-trajectory benches and records machine-readable results:
#   BENCH_micro.json  — google-benchmark microbenchmarks (core building
#                       blocks; BM_BuildProblem / BM_ProblemAssembly track
#                       the zero-copy problem-assembly cost)
#   BENCH_fig5.txt    — GRECA %SA scalability sweep (paper Figure 5)
#   BENCH_batch.txt   — Engine::RecommendBatch vs sequential throughput plus
#                       the problem_assembly_seconds / solve_seconds split
#
# Usage: scripts/bench.sh [build-dir]
# Env:   GRECA_BENCH_SMALL=1 for a smoke-scale run.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_fig5_scalability bench_batch
# bench_micro exists only when google-benchmark is installed; always rebuild
# it so the recorded numbers match the current sources.
if cmake --build "$BUILD_DIR" -j --target bench_micro 2>/dev/null; then
  "$BUILD_DIR"/bench/bench_micro \
    --benchmark_out=BENCH_micro.json --benchmark_out_format=json \
    --benchmark_repetitions=1
else
  echo "bench_micro unavailable (google-benchmark not installed); skipping" >&2
fi

"$BUILD_DIR"/bench/bench_fig5_scalability | tee BENCH_fig5.txt
"$BUILD_DIR"/bench/bench_batch | tee BENCH_batch.txt

echo "Wrote BENCH_micro.json, BENCH_fig5.txt, BENCH_batch.txt"
