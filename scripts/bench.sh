#!/usr/bin/env bash
# Runs the perf-trajectory benches and records machine-readable results:
#   BENCH_micro.json  — google-benchmark microbenchmarks (core building
#                       blocks; BM_BuildProblem / BM_ProblemAssembly track
#                       the zero-copy problem-assembly cost)
#   BENCH_fig5.txt    — GRECA %SA scalability sweep (paper Figure 5)
#   BENCH_batch.txt   — Engine::RecommendBatch vs sequential throughput plus
#                       the problem_assembly_seconds / solve_seconds split
#                       and the period-cache cold/warm assembly comparison
#   BENCH_online.txt  — query p50/p99 with and without a concurrent writer
#                       applying live rating updates (RCU snapshot swap),
#                       plus the publish-latency-vs-accumulated-live-ratings
#                       curve (delta-log acceptance: steady p99 flat within
#                       1.5x while live ratings grow 10x)
#   BENCH_online.json — the same, machine-readable (queries/sec under a
#                       concurrent writer, snapshot-publish latency, the
#                       per-decile publish_curve with compaction counts)
#
# Usage: scripts/bench.sh [build-dir]
# Env:   GRECA_BENCH_SMALL=1 for a smoke-scale run.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_fig5_scalability bench_batch bench_online
# bench_micro exists only when google-benchmark is installed; always rebuild
# it so the recorded numbers match the current sources.
if cmake --build "$BUILD_DIR" -j --target bench_micro 2>/dev/null; then
  "$BUILD_DIR"/bench/bench_micro \
    --benchmark_out=BENCH_micro.json --benchmark_out_format=json \
    --benchmark_repetitions=1
else
  echo "bench_micro unavailable (google-benchmark not installed); skipping" >&2
fi

"$BUILD_DIR"/bench/bench_fig5_scalability | tee BENCH_fig5.txt
"$BUILD_DIR"/bench/bench_batch | tee BENCH_batch.txt
GRECA_BENCH_ONLINE_JSON=BENCH_online.json \
  "$BUILD_DIR"/bench/bench_online | tee BENCH_online.txt

echo "Wrote BENCH_micro.json, BENCH_fig5.txt, BENCH_batch.txt," \
     "BENCH_online.txt, BENCH_online.json"
